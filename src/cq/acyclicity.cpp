#include "cq/acyclicity.h"

#include <algorithm>
#include <functional>
#include <map>

namespace swfomc::cq {

namespace {

// Internal mutable representation: edges as sets of node ids.
struct Reduced {
  std::vector<std::set<int>> edges;

  std::set<int> Nodes() const {
    std::set<int> nodes;
    for (const auto& e : edges) nodes.insert(e.begin(), e.end());
    return nodes;
  }

  int EdgeCountOf(int node) const {
    int count = 0;
    for (const auto& e : edges) count += e.contains(node) ? 1 : 0;
    return count;
  }
};

Reduced ToReduced(const Hypergraph& graph) {
  Reduced r;
  std::map<std::string, int> ids;
  for (const Hypergraph::Edge& edge : graph.edges()) {
    std::set<int> e;
    for (const std::string& node : edge.nodes) {
      auto [it, inserted] = ids.emplace(node, static_cast<int>(ids.size()));
      e.insert(it->second);
    }
    r.edges.push_back(std::move(e));
  }
  return r;
}

}  // namespace

bool IsGammaAcyclic(const Hypergraph& graph) {
  Reduced r = ToReduced(graph);
  bool progress = true;
  while (progress && !r.edges.empty()) {
    progress = false;
    // (c) empty edge.
    for (std::size_t i = 0; i < r.edges.size(); ++i) {
      if (r.edges[i].empty()) {
        r.edges.erase(r.edges.begin() + static_cast<std::ptrdiff_t>(i));
        progress = true;
        break;
      }
    }
    if (progress) continue;
    // (b) singleton edge.
    for (std::size_t i = 0; i < r.edges.size(); ++i) {
      if (r.edges[i].size() == 1) {
        r.edges.erase(r.edges.begin() + static_cast<std::ptrdiff_t>(i));
        progress = true;
        break;
      }
    }
    if (progress) continue;
    // (d) duplicate edges.
    for (std::size_t i = 0; i < r.edges.size() && !progress; ++i) {
      for (std::size_t j = i + 1; j < r.edges.size(); ++j) {
        if (r.edges[i] == r.edges[j]) {
          r.edges.erase(r.edges.begin() + static_cast<std::ptrdiff_t>(j));
          progress = true;
          break;
        }
      }
    }
    if (progress) continue;
    // (a) isolated node (in exactly one edge).
    for (int node : r.Nodes()) {
      if (r.EdgeCountOf(node) == 1) {
        for (auto& e : r.edges) e.erase(node);
        progress = true;
        break;
      }
    }
    if (progress) continue;
    // (e) edge-equivalent nodes.
    std::set<int> nodes = r.Nodes();
    for (auto it = nodes.begin(); it != nodes.end() && !progress; ++it) {
      for (auto jt = std::next(it); jt != nodes.end(); ++jt) {
        bool equivalent = true;
        for (const auto& e : r.edges) {
          if (e.contains(*it) != e.contains(*jt)) {
            equivalent = false;
            break;
          }
        }
        if (equivalent) {
          for (auto& e : r.edges) e.erase(*jt);
          progress = true;
          break;
        }
      }
    }
  }
  return r.edges.empty();
}

bool IsAlphaAcyclic(const Hypergraph& graph) {
  Reduced r = ToReduced(graph);
  bool progress = true;
  while (progress && !r.edges.empty()) {
    progress = false;
    // Remove nodes occurring in exactly one edge.
    for (int node : r.Nodes()) {
      if (r.EdgeCountOf(node) == 1) {
        for (auto& e : r.edges) e.erase(node);
        progress = true;
      }
    }
    // Remove edges contained in another edge (including duplicates and
    // empty edges).
    for (std::size_t i = 0; i < r.edges.size(); ++i) {
      bool contained = r.edges[i].empty() && r.edges.size() > 1;
      for (std::size_t j = 0; j < r.edges.size() && !contained; ++j) {
        if (i == j) continue;
        contained = std::includes(r.edges[j].begin(), r.edges[j].end(),
                                  r.edges[i].begin(), r.edges[i].end()) &&
                    !(r.edges[i] == r.edges[j] && i > j);
      }
      if (contained) {
        r.edges.erase(r.edges.begin() + static_cast<std::ptrdiff_t>(i));
        progress = true;
        break;
      }
    }
    if (r.edges.size() == 1) return true;
  }
  return r.edges.size() <= 1;
}

std::optional<WeakBetaCycle> FindWeakBetaCycle(const Hypergraph& graph) {
  const auto& edges = graph.edges();
  std::size_t m = edges.size();
  const std::set<std::string> node_set = graph.Nodes();
  std::vector<std::string> nodes(node_set.begin(), node_set.end());

  // Backtracking over edge sequences R_1..R_k and nodes x_1..x_k. Sizes
  // are tiny (queries have a handful of atoms), so exhaustive search is
  // appropriate.
  std::vector<std::size_t> edge_seq;
  std::vector<std::string> node_seq;
  std::vector<bool> edge_used(m, false);

  // Checks x is in edges a and b of the current cycle candidate and in no
  // other already-chosen edge.
  auto node_ok = [&](const std::string& x, std::size_t a, std::size_t b,
                     const std::vector<std::size_t>& chosen) {
    if (!edges[a].nodes.contains(x) || !edges[b].nodes.contains(x)) {
      return false;
    }
    for (std::size_t e : chosen) {
      if (e != a && e != b && edges[e].nodes.contains(x)) return false;
    }
    return true;
  };

  std::optional<WeakBetaCycle> found;
  // Recursive extension: we have edges R_1..R_t and nodes x_1..x_{t-1}.
  std::function<bool(std::size_t)> extend = [&](std::size_t k) -> bool {
    std::size_t t = edge_seq.size();
    if (t == k) {
      // Close the cycle: need x_k in R_k and R_1, not elsewhere; and all
      // intermediate node constraints must be re-checked against the full
      // edge set (they were checked incrementally against chosen edges).
      for (const std::string& x : nodes) {
        if (std::find(node_seq.begin(), node_seq.end(), x) != node_seq.end()) {
          continue;
        }
        if (!node_ok(x, edge_seq[k - 1], edge_seq[0], edge_seq)) continue;
        node_seq.push_back(x);
        // Full validation of every node against every cycle edge.
        bool valid = true;
        for (std::size_t i = 0; i < k && valid; ++i) {
          std::size_t a = edge_seq[i];
          std::size_t b = edge_seq[(i + 1) % k];
          valid = node_ok(node_seq[i], a, b, edge_seq);
        }
        if (valid) {
          found = WeakBetaCycle{edge_seq, node_seq};
          return true;
        }
        node_seq.pop_back();
      }
      return false;
    }
    for (std::size_t e = 0; e < m; ++e) {
      if (edge_used[e]) continue;
      // Need a connecting node x_{t} between edge_seq[t-1] and e... choose
      // edge first, node after.
      edge_used[e] = true;
      edge_seq.push_back(e);
      if (t == 0) {
        if (extend(k)) return true;
      } else {
        for (const std::string& x : nodes) {
          if (std::find(node_seq.begin(), node_seq.end(), x) !=
              node_seq.end()) {
            continue;
          }
          if (!node_ok(x, edge_seq[t - 1], e, edge_seq)) continue;
          node_seq.push_back(x);
          if (extend(k)) return true;
          node_seq.pop_back();
        }
      }
      edge_seq.pop_back();
      edge_used[e] = false;
    }
    return false;
  };

  for (std::size_t k = 3; k <= m; ++k) {
    edge_seq.clear();
    node_seq.clear();
    std::fill(edge_used.begin(), edge_used.end(), false);
    if (extend(k)) return found;
  }
  return std::nullopt;
}

AcyclicityClass Classify(const Hypergraph& graph) {
  if (IsGammaAcyclic(graph)) return AcyclicityClass::kGammaAcyclic;
  if (IsBetaAcyclic(graph)) return AcyclicityClass::kBetaAcyclic;
  if (IsAlphaAcyclic(graph)) return AcyclicityClass::kAlphaAcyclic;
  return AcyclicityClass::kCyclic;
}

const char* ToString(AcyclicityClass value) {
  switch (value) {
    case AcyclicityClass::kGammaAcyclic: return "gamma-acyclic";
    case AcyclicityClass::kBetaAcyclic: return "beta-acyclic";
    case AcyclicityClass::kAlphaAcyclic: return "alpha-acyclic";
    case AcyclicityClass::kCyclic: return "cyclic";
  }
  return "?";
}

}  // namespace swfomc::cq
