#ifndef SWFOMC_CQ_GAMMA_EVALUATOR_H_
#define SWFOMC_CQ_GAMMA_EVALUATOR_H_

#include <cstdint>
#include <map>
#include <string>

#include "cq/conjunctive_query.h"
#include "numeric/bigint.h"
#include "numeric/rational.h"

namespace swfomc::cq {

/// Theorem 3.6: Pr(Q) for a γ-acyclic conjunctive query without
/// self-joins, in time polynomial in the domain sizes. Implements the
/// paper's five reduction rules literally, in the generalized semantics
/// where each variable x_i ranges over its own domain [n_i]:
///
///   (a) isolated node x in atom R: delete x; p_R' = 1 - (1-p_R)^{n_x};
///   (b) singleton atom R(x): Pr = Σ_k C(n_x,k) p^k (1-p)^{n_x-k} p_k,
///       where p_k is the residual query with x restricted to [k]
///       (memoized — the recursion is what makes rule (b) polynomial);
///   (c) empty atom R(): multiply the residual by p_R;
///   (d) two atoms over the same variable set: merge, p' = p_R p_S;
///   (e) edge-equivalent variables x, y: merge into z, n_z = n_x * n_y.
///
/// Throws std::invalid_argument when the query is not γ-acyclic (the rules
/// get stuck) — check IsGammaAcyclic first.
class GammaEvaluator {
 public:
  struct Stats {
    std::uint64_t rule_applications = 0;
    std::uint64_t memo_hits = 0;
    std::uint64_t memo_entries = 0;
  };

  /// Pr(Q) with per-variable domain sizes.
  numeric::BigRational Probability(
      const ConjunctiveQuery& query,
      const std::map<std::string, numeric::BigInt>& domain_sizes);

  /// Standard semantics: every variable ranges over [n].
  numeric::BigRational Probability(const ConjunctiveQuery& query,
                                   std::uint64_t domain_size);

  const Stats& stats() const { return stats_; }

 private:
  Stats stats_;
  std::map<std::string, numeric::BigRational> memo_;
};

/// One-shot convenience (standard semantics).
numeric::BigRational GammaAcyclicProbability(const ConjunctiveQuery& query,
                                             std::uint64_t domain_size);

/// Symmetric WFOMC of a γ-acyclic CQ from per-relation weights: converts
/// weights to probabilities p = w/(w+w̄), evaluates Pr(Q), and multiplies
/// by WFOMC(true) = Π (w+w̄)^{#tuples}. Requires w + w̄ != 0 per relation.
numeric::BigRational GammaAcyclicWFOMC(
    const ConjunctiveQuery& query, std::uint64_t domain_size,
    const std::map<std::string,
                   std::pair<numeric::BigRational, numeric::BigRational>>&
        weights);

}  // namespace swfomc::cq

#endif  // SWFOMC_CQ_GAMMA_EVALUATOR_H_
