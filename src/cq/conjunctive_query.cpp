#include "cq/conjunctive_query.h"

#include <cctype>
#include <stdexcept>

namespace swfomc::cq {

namespace {
const numeric::BigRational kHalf = numeric::BigRational::Fraction(1, 2);
}  // namespace

void ConjunctiveQuery::AddAtom(const std::string& relation,
                               std::vector<std::string> variables) {
  for (const QueryAtom& atom : atoms_) {
    if (atom.relation == relation) {
      throw std::invalid_argument(
          "ConjunctiveQuery: self-join on relation " + relation);
    }
  }
  atoms_.push_back(QueryAtom{relation, std::move(variables)});
}

void ConjunctiveQuery::SetProbability(const std::string& relation,
                                      numeric::BigRational probability) {
  probabilities_[relation] = std::move(probability);
}

const numeric::BigRational& ConjunctiveQuery::probability(
    const std::string& relation) const {
  auto it = probabilities_.find(relation);
  if (it != probabilities_.end()) return it->second;
  return kHalf;
}

std::vector<std::string> ConjunctiveQuery::Variables() const {
  std::vector<std::string> result;
  for (const QueryAtom& atom : atoms_) {
    for (const std::string& v : atom.variables) {
      bool seen = false;
      for (const std::string& existing : result) {
        if (existing == v) {
          seen = true;
          break;
        }
      }
      if (!seen) result.push_back(v);
    }
  }
  return result;
}

ConjunctiveQuery ConjunctiveQuery::FromString(const std::string& text) {
  ConjunctiveQuery query;
  std::size_t i = 0;
  auto skip_space = [&] {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
  };
  auto read_name = [&]() -> std::string {
    skip_space();
    std::size_t start = i;
    while (i < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[i])) ||
            text[i] == '_' || text[i] == '\'')) {
      ++i;
    }
    if (start == i) {
      throw std::invalid_argument("ConjunctiveQuery: expected a name at " +
                                  std::to_string(i) + " in " + text);
    }
    return text.substr(start, i - start);
  };
  for (;;) {
    std::string relation = read_name();
    std::vector<std::string> variables;
    skip_space();
    if (i < text.size() && text[i] == '(') {
      ++i;
      skip_space();
      if (i < text.size() && text[i] == ')') {
        ++i;  // 0-ary atom R()
      } else {
        for (;;) {
          variables.push_back(read_name());
          skip_space();
          if (i < text.size() && text[i] == ',') {
            ++i;
            continue;
          }
          if (i < text.size() && text[i] == ')') {
            ++i;
            break;
          }
          throw std::invalid_argument(
              "ConjunctiveQuery: expected ',' or ')' in " + text);
        }
      }
    }
    query.AddAtom(relation, std::move(variables));
    skip_space();
    if (i >= text.size()) break;
    if (text[i] != ',') {
      throw std::invalid_argument("ConjunctiveQuery: expected ',' in " +
                                  text);
    }
    ++i;
  }
  return query;
}

ConjunctiveQuery::AsSentence ConjunctiveQuery::ToSentence() const {
  AsSentence result;
  std::vector<logic::Formula> conjuncts;
  for (const QueryAtom& atom : atoms_) {
    const numeric::BigRational& p = probability(atom.relation);
    logic::RelationId id = result.vocabulary.AddRelation(
        atom.relation, atom.variables.size(), p,
        numeric::BigRational(1) - p);
    std::vector<logic::Term> args;
    args.reserve(atom.variables.size());
    for (const std::string& v : atom.variables) {
      args.push_back(logic::Term::Var(v));
    }
    conjuncts.push_back(logic::Atom(id, std::move(args)));
  }
  logic::Formula body = logic::And(std::move(conjuncts));
  result.sentence = logic::Exists(Variables(), std::move(body));
  return result;
}

std::string ConjunctiveQuery::ToString() const {
  std::string out;
  for (std::size_t i = 0; i < atoms_.size(); ++i) {
    if (i > 0) out += ", ";
    out += atoms_[i].relation;
    out += "(";
    for (std::size_t j = 0; j < atoms_[i].variables.size(); ++j) {
      if (j > 0) out += ",";
      out += atoms_[i].variables[j];
    }
    out += ")";
  }
  return out;
}

}  // namespace swfomc::cq
