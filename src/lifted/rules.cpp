#include "lifted/rules.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "logic/printer.h"
#include "logic/transform.h"

namespace swfomc::lifted {

namespace {

using logic::Formula;
using logic::FormulaKind;
using numeric::BigRational;

void CollectRelations(const Formula& formula, std::set<logic::RelationId>* out) {
  if (formula->kind() == FormulaKind::kAtom) {
    out->insert(formula->relation());
  }
  for (const Formula& child : formula->children()) {
    CollectRelations(child, out);
  }
}

// Separator-variable test (Dalvi-Suciu): the variable must occur in
// every relational atom, *and* for each relation symbol there must be one
// argument position carrying it in all of that relation's atoms — only
// then are the ground-tuple sets of distinct groundings disjoint.
// ("occurs in every atom" alone is not enough: in ∃y (R(x,y) ∧ R(y,x))
// the groundings x=a and x=b share the tuples R(a,b), R(b,a).) Equality
// atoms are exempt: they involve no ground tuples.
struct SeparatorScan {
  bool every_atom = true;
  // Per relation: argument positions holding the variable in *all* atoms
  // seen so far (intersection); missing entry = relation not seen.
  std::map<logic::RelationId, std::set<std::size_t>> common_positions;
};

void ScanSeparator(const Formula& formula, const std::string& name,
                   SeparatorScan* scan) {
  if (formula->kind() == FormulaKind::kAtom) {
    std::set<std::size_t> positions;
    for (std::size_t i = 0; i < formula->arguments().size(); ++i) {
      const logic::Term& term = formula->arguments()[i];
      if (term.IsVariable() && term.name == name) positions.insert(i);
    }
    if (positions.empty()) {
      scan->every_atom = false;
      return;
    }
    auto [it, inserted] =
        scan->common_positions.emplace(formula->relation(), positions);
    if (!inserted) {
      std::set<std::size_t> intersection;
      std::set_intersection(
          it->second.begin(), it->second.end(), positions.begin(),
          positions.end(),
          std::inserter(intersection, intersection.begin()));
      it->second = std::move(intersection);
    }
    return;
  }
  // A quantifier shadowing the name makes deeper occurrences a different
  // variable — any relational atom below then lacks the separator.
  if ((formula->kind() == FormulaKind::kForall ||
       formula->kind() == FormulaKind::kExists) &&
      formula->variable() == name) {
    std::set<logic::RelationId> relations;
    CollectRelations(formula, &relations);
    if (!relations.empty()) scan->every_atom = false;
    return;
  }
  for (const Formula& child : formula->children()) {
    ScanSeparator(child, name, scan);
  }
}

bool IsSeparatorVariable(const Formula& formula, const std::string& name) {
  SeparatorScan scan;
  ScanSeparator(formula, name, &scan);
  if (!scan.every_atom) return false;
  for (const auto& [relation, positions] : scan.common_positions) {
    if (positions.empty()) return false;
  }
  return true;
}

// A fully ground formula's distinct ground atoms (relation + constants).
using GroundAtom = std::pair<logic::RelationId, std::vector<std::uint64_t>>;

bool CollectGroundAtoms(const Formula& formula, std::set<GroundAtom>* out) {
  switch (formula->kind()) {
    case FormulaKind::kForall:
    case FormulaKind::kExists:
      return false;
    case FormulaKind::kAtom: {
      GroundAtom atom{formula->relation(), {}};
      for (const logic::Term& term : formula->arguments()) {
        if (!term.IsConstant()) return false;
        atom.second.push_back(term.value);
      }
      out->insert(std::move(atom));
      return true;
    }
    case FormulaKind::kEquality:
      for (const logic::Term& term : formula->arguments()) {
        if (!term.IsConstant()) return false;
      }
      return true;
    default:
      for (const Formula& child : formula->children()) {
        if (!CollectGroundAtoms(child, out)) return false;
      }
      return true;
  }
}

bool EvaluateGround(const Formula& formula,
                    const std::map<GroundAtom, bool>& assignment) {
  switch (formula->kind()) {
    case FormulaKind::kTrue:
      return true;
    case FormulaKind::kFalse:
      return false;
    case FormulaKind::kAtom: {
      GroundAtom atom{formula->relation(), {}};
      for (const logic::Term& term : formula->arguments()) {
        atom.second.push_back(term.value);
      }
      return assignment.at(atom);
    }
    case FormulaKind::kEquality:
      return formula->arguments()[0].value == formula->arguments()[1].value;
    case FormulaKind::kNot:
      return !EvaluateGround(formula->child(), assignment);
    case FormulaKind::kAnd:
      for (const Formula& child : formula->children()) {
        if (!EvaluateGround(child, assignment)) return false;
      }
      return true;
    case FormulaKind::kOr:
      for (const Formula& child : formula->children()) {
        if (EvaluateGround(child, assignment)) return true;
      }
      return false;
    case FormulaKind::kImplies:
      return !EvaluateGround(formula->child(0), assignment) ||
             EvaluateGround(formula->child(1), assignment);
    case FormulaKind::kIff:
      return EvaluateGround(formula->child(0), assignment) ==
             EvaluateGround(formula->child(1), assignment);
    default:
      throw std::logic_error("EvaluateGround: unexpected quantifier");
  }
}

}  // namespace

RuleEngine::RuleEngine(const logic::Vocabulary& vocabulary)
    : vocabulary_(&vocabulary) {}

std::optional<BigRational> RuleEngine::Probability(
    const logic::Formula& sentence, std::uint64_t domain_size) {
  trace_ = Trace{};
  return Solve(sentence, domain_size);
}

std::optional<BigRational> RuleEngine::Solve(const Formula& formula,
                                             std::uint64_t domain_size) {
  switch (formula->kind()) {
    case FormulaKind::kTrue:
      return BigRational(1);
    case FormulaKind::kFalse:
      return BigRational(0);
    case FormulaKind::kNot: {
      auto inner = Solve(formula->child(), domain_size);
      if (!inner.has_value()) return std::nullopt;
      return BigRational(1) - *inner;
    }
    case FormulaKind::kImplies:
      return Solve(logic::Or(logic::Not(formula->child(0)), formula->child(1)),
                   domain_size);
    case FormulaKind::kForall:
    case FormulaKind::kExists: {
      bool is_forall = formula->kind() == FormulaKind::kForall;
      if (domain_size == 0) {
        return BigRational(is_forall ? 1 : 0);
      }
      // Scope minimization: children of a connective directly under the
      // quantifier that do not mention the quantified variable hoist out
      // (Qx (A ∘ B(x)) = A ∘ Qx B(x) for ∘ ∈ {∧, ∨} over a non-empty
      // domain). This exposes decompositions the separator rule would
      // otherwise mask.
      {
        const Formula& direct_body = formula->child();
        if (direct_body->kind() == FormulaKind::kAnd ||
            direct_body->kind() == FormulaKind::kOr) {
          std::vector<Formula> free_of_x;
          std::vector<Formula> dependent;
          for (const Formula& child : direct_body->children()) {
            if (logic::FreeVariables(child).contains(formula->variable())) {
              dependent.push_back(child);
            } else {
              free_of_x.push_back(child);
            }
          }
          if (!free_of_x.empty() && !dependent.empty()) {
            bool conjunction = direct_body->kind() == FormulaKind::kAnd;
            Formula inner = dependent.size() == 1
                                ? dependent[0]
                                : (conjunction ? logic::And(dependent)
                                               : logic::Or(dependent));
            inner = is_forall ? logic::Forall(formula->variable(), inner)
                              : logic::Exists(formula->variable(), inner);
            free_of_x.push_back(std::move(inner));
            return Solve(conjunction ? logic::And(std::move(free_of_x))
                                     : logic::Or(std::move(free_of_x)),
                         domain_size);
          }
        }
      }
      // Gather the maximal same-quantifier block and look for a separator
      // variable (one occurring in every relational atom): independent
      // partial grounding.
      std::vector<std::string> block;
      Formula body = formula;
      while (body->kind() == formula->kind()) {
        block.push_back(body->variable());
        body = body->child();
      }
      for (std::size_t i = 0; i < block.size(); ++i) {
        if (!IsSeparatorVariable(body, block[i])) continue;
        // Rebuild the quantifier block without block[i], substitute a
        // fixed constant (symmetry: any element gives the same value).
        Formula reduced =
            logic::SubstituteConstant(body, block[i], 0);
        for (std::size_t j = block.size(); j-- > 0;) {
          if (j == i) continue;
          reduced = is_forall ? logic::Forall(block[j], reduced)
                              : logic::Exists(block[j], reduced);
        }
        auto once = Solve(reduced, domain_size);
        if (!once.has_value()) return std::nullopt;
        ++trace_.partial_groundings;
        if (is_forall) {
          return BigRational::Pow(*once,
                                  static_cast<std::int64_t>(domain_size));
        }
        return BigRational(1) -
               BigRational::Pow(BigRational(1) - *once,
                                static_cast<std::int64_t>(domain_size));
      }
      break;  // no separator: fall through to the base case / failure
    }
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      // Partition children into relation-disjoint groups.
      std::size_t count = formula->children().size();
      std::vector<std::set<logic::RelationId>> relations(count);
      std::vector<std::size_t> parent(count);
      for (std::size_t i = 0; i < count; ++i) {
        parent[i] = i;
        CollectRelations(formula->child(i), &relations[i]);
      }
      std::function<std::size_t(std::size_t)> find =
          [&](std::size_t x) -> std::size_t {
        while (parent[x] != x) x = parent[x] = parent[parent[x]];
        return x;
      };
      std::map<logic::RelationId, std::size_t> owner;
      for (std::size_t i = 0; i < count; ++i) {
        for (logic::RelationId r : relations[i]) {
          auto [it, inserted] = owner.emplace(r, i);
          if (!inserted) parent[find(i)] = find(it->second);
        }
      }
      std::map<std::size_t, std::vector<Formula>> groups;
      for (std::size_t i = 0; i < count; ++i) {
        groups[find(i)].push_back(formula->child(i));
      }
      if (groups.size() > 1) {
        bool conjunction = formula->kind() == FormulaKind::kAnd;
        BigRational result(1);
        for (auto& [root, members] : groups) {
          Formula piece = members.size() == 1
                              ? members[0]
                              : (conjunction ? logic::And(members)
                                             : logic::Or(members));
          auto part = Solve(piece, domain_size);
          if (!part.has_value()) return std::nullopt;
          result *= conjunction ? *part : BigRational(1) - *part;
        }
        if (conjunction) {
          ++trace_.decomposable_conjunctions;
          return result;
        }
        ++trace_.decomposable_disjunctions;
        return BigRational(1) - result;
      }
      break;  // one entangled group: base case / failure
    }
    default:
      break;
  }

  // Ground base case: finitely many ground atoms, solved by enumeration.
  std::set<GroundAtom> atoms;
  if (CollectGroundAtoms(formula, &atoms) && atoms.size() <= 20) {
    std::vector<GroundAtom> ordered(atoms.begin(), atoms.end());
    BigRational total(0);
    for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << ordered.size());
         ++mask) {
      std::map<GroundAtom, bool> assignment;
      BigRational weight(1);
      for (std::size_t i = 0; i < ordered.size(); ++i) {
        bool value = (mask >> i) & 1;
        assignment.emplace(ordered[i], value);
        const BigRational& w =
            vocabulary_->positive_weight(ordered[i].first);
        const BigRational& wbar =
            vocabulary_->negative_weight(ordered[i].first);
        BigRational normalizer = w + wbar;
        if (normalizer.IsZero()) return std::nullopt;
        weight *= (value ? w : wbar) / normalizer;
      }
      if (EvaluateGround(formula, assignment)) total += weight;
    }
    ++trace_.ground_base_cases;
    return total;
  }

  if (trace_.failure.empty()) {
    trace_.failure = logic::ToString(formula, *vocabulary_);
  }
  return std::nullopt;
}

}  // namespace swfomc::lifted
