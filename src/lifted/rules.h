#ifndef SWFOMC_LIFTED_RULES_H_
#define SWFOMC_LIFTED_RULES_H_

#include <cstdint>
#include <optional>
#include <string>

#include "logic/formula.h"
#include "logic/vocabulary.h"
#include "numeric/rational.h"

namespace swfomc::lifted {

/// A rule-based lifted inference engine in the style the literature calls
/// "lifted inference rules" (WFOMC by first-order knowledge compilation).
/// Theorem 3.7's closing remark — that *no existing set of lifted rules*
/// computes QS4, so "we do not yet have a candidate for a complete set of
/// lifted inference rules" — is only meaningful against an actual rule
/// set; this module is that baseline. It applies, recursively:
///
///   * decomposable conjunction  Pr(Φ₁ ∧ Φ₂) = Pr(Φ₁)·Pr(Φ₂) and
///   * decomposable disjunction  Pr(Φ₁ ∨ Φ₂) = 1 − (1−Pr(Φ₁))(1−Pr(Φ₂))
///     when the conjuncts/disjuncts share no relation symbol;
///   * independent partial grounding (the "separator variable" rule the
///     paper uses for cγ in Section 3.2): if a leading quantified
///     variable occurs in every atom, the groundings are independent:
///       Pr(∀x ψ) = Pr(ψ[c/x])^n,   Pr(∃x ψ) = 1 − (1 − Pr(ψ[c/x]))^n;
///   * negation / implication rewriting and ground-sentence base cases
///     (a sentence over finitely many ground atoms is solved directly).
///
/// Deliberately *absent*: unary atom counting (the Σ_k C(n,k)... rule)
/// and anything stronger — matching the minimal rule sets whose
/// incompleteness the paper demonstrates. The engine returns nullopt when
/// stuck, and that failure is itself the reproduced result: it computes
/// ∀x∃y R(x,y) and decomposable families, and fails on QS4 (needs the
/// Theorem 3.7 DP), on Table 1's sentence (needs atom counting), and on
/// transitivity (conjectured hard).
class RuleEngine {
 public:
  struct Trace {
    std::size_t decomposable_conjunctions = 0;
    std::size_t decomposable_disjunctions = 0;
    std::size_t partial_groundings = 0;
    std::size_t ground_base_cases = 0;
    std::string failure;  // first unhandled subformula, when stuck
  };

  explicit RuleEngine(const logic::Vocabulary& vocabulary);

  /// Pr(Φ) over the symmetric tuple-independent distribution induced by
  /// the vocabulary weights (w, w̄) -> p = w/(w+w̄); nullopt when no rule
  /// applies to some subproblem. Requires w + w̄ != 0 per relation.
  std::optional<numeric::BigRational> Probability(
      const logic::Formula& sentence, std::uint64_t domain_size);

  const Trace& trace() const { return trace_; }

 private:
  std::optional<numeric::BigRational> Solve(const logic::Formula& formula,
                                            std::uint64_t domain_size);

  const logic::Vocabulary* vocabulary_;
  Trace trace_;
};

}  // namespace swfomc::lifted

#endif  // SWFOMC_LIFTED_RULES_H_
