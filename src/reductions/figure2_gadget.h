#ifndef SWFOMC_REDUCTIONS_FIGURE2_GADGET_H_
#define SWFOMC_REDUCTIONS_FIGURE2_GADGET_H_

#include <cstdint>
#include <vector>

#include "logic/formula.h"
#include "logic/vocabulary.h"

namespace swfomc::reductions {

/// The Figure 2 chain gadget shared by the #SAT reduction (Theorem 4.1(1))
/// and its QBF extension (Theorem 4.1(2)): over a domain of size n+1, the
/// constraints pin the models to exactly the graphs of Figure 2 — a
/// linear R-chain of n elements from the unique A-element to the unique
/// B-element, plus a unique C-element off the chain.
struct Figure2Gadget {
  logic::RelationId a;  // A/1: chain start
  logic::RelationId b;  // B/1: chain end
  logic::RelationId c;  // C/1: the off-chain hub S-edges leave from
  logic::RelationId r;  // R/2: chain edges
};

/// Declares A, B, C, R on the vocabulary and returns their ids.
Figure2Gadget DeclareFigure2Gadget(logic::Vocabulary* vocabulary);

/// The chain constraints (everything in Figure 2 except the S-edges):
/// unique pairwise-distinct A/B/C elements, an A→B R-walk of exactly n
/// elements, no A→B R-walk of any other length in [1, 2n], and R avoiding
/// the C-element. Each conjunct uses at most two logical variables.
std::vector<logic::Formula> ChainConstraints(const Figure2Gadget& gadget,
                                             std::uint32_t n);

/// α_i(x): "x is the i-th chain element" (1-based), built with the
/// variables {x, y} only by alternating the target variable.
logic::Formula AlphaFormula(const Figure2Gadget& gadget, std::uint32_t i,
                            bool target_is_x);

}  // namespace swfomc::reductions

#endif  // SWFOMC_REDUCTIONS_FIGURE2_GADGET_H_
