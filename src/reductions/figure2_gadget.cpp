#include "reductions/figure2_gadget.h"

namespace swfomc::reductions {

namespace {

using logic::Atom;
using logic::Formula;
using logic::Term;

Term X() { return Term::Var("x"); }
Term Y() { return Term::Var("y"); }

Formula UniqueExistence(logic::RelationId relation) {
  Formula exists = logic::Exists("x", Atom(relation, {X()}));
  Formula unique = logic::Forall(
      {"x", "y"},
      logic::Implies(logic::And(Atom(relation, {X()}), Atom(relation, {Y()})),
                     logic::Equals(X(), Y())));
  return logic::And(std::move(exists), std::move(unique));
}

Formula Disjoint(logic::RelationId first, logic::RelationId second) {
  return logic::Not(logic::Exists(
      "x", logic::And(Atom(first, {X()}), Atom(second, {X()}))));
}

}  // namespace

Figure2Gadget DeclareFigure2Gadget(logic::Vocabulary* vocabulary) {
  Figure2Gadget gadget;
  gadget.a = vocabulary->AddRelation("A", 1);
  gadget.b = vocabulary->AddRelation("B", 1);
  gadget.c = vocabulary->AddRelation("C", 1);
  gadget.r = vocabulary->AddRelation("R", 2);
  return gadget;
}

Formula AlphaFormula(const Figure2Gadget& gadget, std::uint32_t i,
                     bool target_is_x) {
  // α_1(v) = A(v); α_{i+1}(v) = ∃u (α_i(u) & R(u,v)) with u, v
  // alternating between x and y so the formula stays in FO².
  Term target = target_is_x ? X() : Y();
  if (i == 1) return Atom(gadget.a, {target});
  Term source = target_is_x ? Y() : X();
  Formula inner = AlphaFormula(gadget, i - 1, !target_is_x);
  return logic::Exists(
      source.name,
      logic::And(std::move(inner), Atom(gadget.r, {source, target})));
}

std::vector<Formula> ChainConstraints(const Figure2Gadget& gadget,
                                      std::uint32_t n) {
  std::vector<Formula> parts;
  parts.push_back(UniqueExistence(gadget.a));
  parts.push_back(UniqueExistence(gadget.b));
  parts.push_back(UniqueExistence(gadget.c));
  parts.push_back(Disjoint(gadget.a, gadget.b));
  parts.push_back(Disjoint(gadget.a, gadget.c));
  parts.push_back(Disjoint(gadget.b, gadget.c));
  // An A→B walk of exactly n elements exists...
  parts.push_back(logic::Exists(
      "x",
      logic::And(AlphaFormula(gadget, n, true), Atom(gadget.b, {X()}))));
  // ...and no A→B walk of any other length in [1, 2n].
  for (std::uint32_t m = 1; m <= 2 * n; ++m) {
    if (m == n) continue;
    parts.push_back(logic::Not(logic::Exists(
        "x",
        logic::And(AlphaFormula(gadget, m, true), Atom(gadget.b, {X()})))));
  }
  // R avoids the C element.
  parts.push_back(logic::Forall(
      {"x", "y"},
      logic::Implies(Atom(gadget.r, {X(), Y()}),
                     logic::And(logic::Not(Atom(gadget.c, {X()})),
                                logic::Not(Atom(gadget.c, {Y()}))))));
  return parts;
}

}  // namespace swfomc::reductions
