#include "reductions/qbf.h"

#include <set>
#include <stdexcept>
#include <string>

#include "reductions/figure2_gadget.h"
#include "reductions/spectrum.h"

namespace swfomc::reductions {

namespace {

using logic::Atom;
using logic::Formula;
using logic::Term;
using prop::PropKind;

bool EvaluateMatrix(const prop::PropFormula& formula,
                    std::vector<bool>& assignment) {
  switch (formula->kind()) {
    case PropKind::kTrue:
      return true;
    case PropKind::kFalse:
      return false;
    case PropKind::kVar:
      return assignment.at(formula->variable());
    case PropKind::kNot:
      return !EvaluateMatrix(formula->child(), assignment);
    case PropKind::kAnd:
      for (const prop::PropFormula& child : formula->children()) {
        if (!EvaluateMatrix(child, assignment)) return false;
      }
      return true;
    case PropKind::kOr:
      for (const prop::PropFormula& child : formula->children()) {
        if (EvaluateMatrix(child, assignment)) return true;
      }
      return false;
  }
  throw std::logic_error("EvaluateMatrix: unreachable");
}

bool EvaluateFrom(const QuantifiedBooleanFormula& qbf, std::size_t position,
                  std::vector<bool>& assignment) {
  if (position == qbf.prefix.size()) {
    return EvaluateMatrix(qbf.matrix, assignment);
  }
  const auto& q = qbf.prefix[position];
  for (bool value : {false, true}) {
    assignment[q.variable] = value;
    bool result = EvaluateFrom(qbf, position + 1, assignment);
    if (q.is_forall && !result) return false;
    if (!q.is_forall && result) return true;
  }
  return q.is_forall;
}

// The variable name u_i carrying Boolean variable X_i's chosen endpoint.
std::string UName(prop::VarId variable) {
  return "u" + std::to_string(variable);
}

// Translates the matrix: X_i becomes ∃x∃z (C(z) ∧ α_i(x) ∧ S(z, x, u_i)).
Formula TranslateMatrix(const prop::PropFormula& formula,
                        const Figure2Gadget& gadget, logic::RelationId s) {
  switch (formula->kind()) {
    case PropKind::kTrue:
      return logic::True();
    case PropKind::kFalse:
      return logic::False();
    case PropKind::kVar: {
      std::uint32_t i = formula->variable() + 1;  // 1-based chain position
      Formula alpha = AlphaFormula(gadget, i, /*target_is_x=*/true);
      Formula edge = logic::Exists(
          "y", logic::And(Atom(gadget.c, {Term::Var("y")}),
                          Atom(s, {Term::Var("y"), Term::Var("x"),
                                   Term::Var(UName(formula->variable()))})));
      return logic::Exists("x",
                           logic::And(std::move(alpha), std::move(edge)));
    }
    case PropKind::kNot:
      return logic::Not(TranslateMatrix(formula->child(), gadget, s));
    case PropKind::kAnd:
    case PropKind::kOr: {
      std::vector<Formula> children;
      children.reserve(formula->children().size());
      for (const prop::PropFormula& child : formula->children()) {
        children.push_back(TranslateMatrix(child, gadget, s));
      }
      return formula->kind() == PropKind::kAnd
                 ? logic::And(std::move(children))
                 : logic::Or(std::move(children));
    }
  }
  throw std::logic_error("TranslateMatrix: unreachable");
}

}  // namespace

bool EvaluateQbf(const QuantifiedBooleanFormula& qbf) {
  std::set<prop::VarId> quantified;
  for (const auto& q : qbf.prefix) {
    if (!quantified.insert(q.variable).second) {
      throw std::invalid_argument("EvaluateQbf: variable quantified twice");
    }
  }
  std::size_t bound = prop::VariableUpperBound(qbf.matrix);
  if (!quantified.empty()) {
    bound = std::max<std::size_t>(bound, *quantified.rbegin() + 1);
  }
  std::vector<bool> assignment(bound, false);
  return EvaluateFrom(qbf, 0, assignment);
}

QbfReduction EncodeQbf(const QuantifiedBooleanFormula& qbf) {
  std::uint32_t k = static_cast<std::uint32_t>(qbf.prefix.size());
  if (k < 2) {
    throw std::invalid_argument(
        "EncodeQbf: need at least two quantified variables (distinct A/B "
        "endpoints)");
  }
  std::set<prop::VarId> quantified;
  for (const auto& q : qbf.prefix) {
    if (q.variable >= k || !quantified.insert(q.variable).second) {
      throw std::invalid_argument(
          "EncodeQbf: prefix must quantify variables 0..k-1 exactly once");
    }
  }

  QbfReduction result;
  Figure2Gadget gadget = DeclareFigure2Gadget(&result.vocabulary);
  logic::RelationId s = result.vocabulary.AddRelation("S", 3);
  result.domain_size = k + 1;

  std::vector<Formula> parts = ChainConstraints(gadget, k);

  Term x = Term::Var("x");
  Term y = Term::Var("y");
  Term u = Term::Var("u");
  Term v = Term::Var("v");
  // S(x,y,u) ⇒ C(x) ∧ ¬C(y) ∧ (A(u) ∨ B(u)).
  parts.push_back(logic::Forall(
      {"x", "y", "u"},
      logic::Implies(
          Atom(s, {x, y, u}),
          logic::And(std::vector<Formula>{
              Atom(gadget.c, {x}), logic::Not(Atom(gadget.c, {y})),
              logic::Or(Atom(gadget.a, {u}), Atom(gadget.b, {u}))}))));
  // The xor constraint: for eligible pairs, the A-endpoint bit is the
  // negation of the B-endpoint bit (picking u picks a truth value).
  parts.push_back(logic::Forall(
      {"x", "y", "u", "v"},
      logic::Implies(
          logic::And(std::vector<Formula>{Atom(gadget.c, {x}),
                                          logic::Not(Atom(gadget.c, {y})),
                                          Atom(gadget.a, {u}),
                                          Atom(gadget.b, {v})}),
          logic::Not(logic::Iff(Atom(s, {x, y, u}),
                                Atom(s, {x, y, v}))))));

  // The quantifier prefix, guarded to the two endpoints, around the
  // translated matrix.
  Formula body = TranslateMatrix(qbf.matrix, gadget, s);
  for (std::size_t i = qbf.prefix.size(); i-- > 0;) {
    const auto& q = qbf.prefix[i];
    std::string name = UName(q.variable);
    Term ui = Term::Var(name);
    Formula endpoint =
        logic::Or(Atom(gadget.a, {ui}), Atom(gadget.b, {ui}));
    body = q.is_forall
               ? logic::Forall(name, logic::Implies(endpoint, body))
               : logic::Exists(name, logic::And(endpoint, body));
  }
  parts.push_back(std::move(body));

  result.sentence = logic::And(std::move(parts));
  return result;
}

bool QbfValidViaSpectrum(const QuantifiedBooleanFormula& qbf) {
  QbfReduction reduction = EncodeQbf(qbf);
  return HasModelOfSize(reduction.sentence, reduction.vocabulary,
                        reduction.domain_size);
}

}  // namespace swfomc::reductions
