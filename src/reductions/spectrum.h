#ifndef SWFOMC_REDUCTIONS_SPECTRUM_H_
#define SWFOMC_REDUCTIONS_SPECTRUM_H_

#include <vector>

#include "logic/formula.h"
#include "logic/vocabulary.h"

namespace swfomc::reductions {

/// The decision problem associated with (W)FOMC (Section 4): given Φ and
/// n, is n ∈ Spec(Φ)? Decided by grounding and DPLL satisfiability (the
/// PSPACE upper bound's "enumerate structures" replaced by search). For
/// FO² the paper proves the combined complexity is NP-complete; for full
/// FO it is PSPACE-complete — either way this exact procedure is the
/// practical tool.
bool HasModelOfSize(const logic::Formula& sentence,
                    const logic::Vocabulary& vocabulary,
                    std::uint64_t domain_size);

/// The initial segment of Spec(Φ): all n in [from, to] with a model.
std::vector<std::uint64_t> SpectrumMembers(const logic::Formula& sentence,
                                           const logic::Vocabulary& vocabulary,
                                           std::uint64_t from,
                                           std::uint64_t to);

}  // namespace swfomc::reductions

#endif  // SWFOMC_REDUCTIONS_SPECTRUM_H_
