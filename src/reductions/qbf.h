#ifndef SWFOMC_REDUCTIONS_QBF_H_
#define SWFOMC_REDUCTIONS_QBF_H_

#include <cstdint>
#include <vector>

#include "logic/formula.h"
#include "logic/vocabulary.h"
#include "prop/prop_formula.h"

namespace swfomc::reductions {

/// A Quantified Boolean Formula Q_1 X_1 Q_2 X_2 ... Q_k X_k F, the
/// PSPACE-complete problem behind Theorem 4.1(2). Variables are 0-based;
/// the prefix must quantify every variable of the matrix exactly once.
struct QuantifiedBooleanFormula {
  struct QuantifiedVar {
    bool is_forall;
    prop::VarId variable;
  };
  std::vector<QuantifiedVar> prefix;  // outermost first
  prop::PropFormula matrix;
};

/// Reference QBF solver by recursive expansion: exponential time, linear
/// space (the textbook PSPACE witness). Ground truth for the reduction.
bool EvaluateQbf(const QuantifiedBooleanFormula& qbf);

/// Theorem 4.1(2), PSPACE-hardness of the combined decision problem
/// "n ∈ Spec(Φ)" for full FO: the QBF validity problem reduces to
/// spectrum membership. The Figure 2 gadget is extended per Section 4:
///   * S becomes ternary S(x, y, u) with u restricted to the two
///     distinguished chain endpoints (the A- and B-elements);
///   * S(c0, ci, a-elem) and S(c0, ci, b-elem) are complementary
///     (the xor constraint), so picking u picks a truth value for X_i;
///   * each Boolean quantifier Q_i X_i becomes the guarded domain
///     quantifier Q_i u_i over {a-elem, b-elem}, and X_i in the matrix
///     becomes ∃x∃z (C(z) ∧ α_i(x) ∧ S(z, x, u_i)).
/// Over a domain of size k+1 (k = number of Boolean variables, k >= 2):
/// the sentence has a model iff the QBF is valid.
struct QbfReduction {
  logic::Vocabulary vocabulary;
  logic::Formula sentence;
  std::uint64_t domain_size;  // k + 1
};

QbfReduction EncodeQbf(const QuantifiedBooleanFormula& qbf);

/// Decides the QBF through the reduction: builds ϕ_QBF and asks the
/// spectrum decision procedure whether a model of size k+1 exists.
bool QbfValidViaSpectrum(const QuantifiedBooleanFormula& qbf);

}  // namespace swfomc::reductions

#endif  // SWFOMC_REDUCTIONS_QBF_H_
