#include "reductions/spectrum.h"

#include "grounding/lineage.h"
#include "grounding/tuple_index.h"
#include "prop/tseitin.h"
#include "wmc/dpll_counter.h"

namespace swfomc::reductions {

bool HasModelOfSize(const logic::Formula& sentence,
                    const logic::Vocabulary& vocabulary,
                    std::uint64_t domain_size) {
  grounding::TupleIndex index(vocabulary, domain_size);
  prop::PropFormula lineage = grounding::GroundLineage(sentence, index);
  if (lineage->kind() == prop::PropKind::kTrue) return true;
  if (lineage->kind() == prop::PropKind::kFalse) return false;
  prop::TseitinResult tseitin = prop::TseitinTransform(
      lineage, static_cast<std::uint32_t>(index.TupleCount()));
  return wmc::DpllCounter::IsSatisfiable(tseitin.cnf);
}

std::vector<std::uint64_t> SpectrumMembers(
    const logic::Formula& sentence, const logic::Vocabulary& vocabulary,
    std::uint64_t from, std::uint64_t to) {
  std::vector<std::uint64_t> result;
  for (std::uint64_t n = from; n <= to; ++n) {
    if (HasModelOfSize(sentence, vocabulary, n)) result.push_back(n);
  }
  return result;
}

}  // namespace swfomc::reductions
