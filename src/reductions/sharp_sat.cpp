#include "reductions/sharp_sat.h"

#include <stdexcept>

#include "grounding/grounded_wfomc.h"
#include "numeric/combinatorics.h"
#include "reductions/figure2_gadget.h"

namespace swfomc::reductions {

namespace {

using logic::Atom;
using logic::Formula;
using logic::Term;

Term X() { return Term::Var("x"); }
Term Y() { return Term::Var("y"); }

// Replaces propositional variables by their γ_i sentences:
// γ_i = ∃x (α_i(x) & ∃y S(y,x)).
Formula Translate(const prop::PropFormula& formula,
                  const Figure2Gadget& gadget, logic::RelationId s) {
  switch (formula->kind()) {
    case prop::PropKind::kTrue:
      return logic::True();
    case prop::PropKind::kFalse:
      return logic::False();
    case prop::PropKind::kVar: {
      std::uint32_t i = formula->variable() + 1;  // 1-based chain position
      Formula alpha = AlphaFormula(gadget, i, /*target_is_x=*/true);
      Formula has_s = logic::Exists("y", Atom(s, {Y(), X()}));
      return logic::Exists("x",
                           logic::And(std::move(alpha), std::move(has_s)));
    }
    case prop::PropKind::kNot:
      return logic::Not(Translate(formula->child(), gadget, s));
    case prop::PropKind::kAnd:
    case prop::PropKind::kOr: {
      std::vector<Formula> children;
      children.reserve(formula->children().size());
      for (const prop::PropFormula& child : formula->children()) {
        children.push_back(Translate(child, gadget, s));
      }
      return formula->kind() == prop::PropKind::kAnd
                 ? logic::And(std::move(children))
                 : logic::Or(std::move(children));
    }
  }
  throw std::logic_error("Translate: unreachable");
}

}  // namespace

logic::Formula ChainPositionFormula(const logic::Vocabulary& vocabulary,
                                    std::uint32_t i) {
  Figure2Gadget gadget{vocabulary.Require("A"), vocabulary.Require("B"),
                       vocabulary.Require("C"), vocabulary.Require("R")};
  return AlphaFormula(gadget, i, true);
}

SharpSatReduction EncodeSharpSat(const prop::PropFormula& boolean_formula,
                                 std::uint32_t num_variables) {
  if (num_variables < 2) {
    throw std::invalid_argument(
        "EncodeSharpSat: need n >= 2 (the A and B chain endpoints must be "
        "distinct)");
  }
  if (prop::VariableUpperBound(boolean_formula) > num_variables) {
    throw std::invalid_argument(
        "EncodeSharpSat: formula mentions variables beyond num_variables");
  }
  SharpSatReduction result;
  Figure2Gadget gadget = DeclareFigure2Gadget(&result.vocabulary);
  logic::RelationId s = result.vocabulary.AddRelation("S", 2);
  std::uint32_t n = num_variables;
  result.domain_size = n + 1;

  std::vector<Formula> parts = ChainConstraints(gadget, n);
  // S goes from the C element to non-C (chain) elements only.
  parts.push_back(logic::Forall(
      {"x", "y"},
      logic::Implies(Atom(s, {X(), Y()}),
                     logic::And(Atom(gadget.c, {X()}),
                                logic::Not(Atom(gadget.c, {Y()}))))));
  // The Boolean formula itself.
  parts.push_back(Translate(boolean_formula, gadget, s));

  result.sentence = logic::And(std::move(parts));
  if (!logic::InFragmentFOk(result.sentence, 2)) {
    throw std::logic_error("EncodeSharpSat: sentence left FO2");
  }
  return result;
}

numeric::BigInt SharpSatViaFOMC(const prop::PropFormula& boolean_formula,
                                std::uint32_t num_variables) {
  SharpSatReduction reduction =
      EncodeSharpSat(boolean_formula, num_variables);
  numeric::BigInt total = grounding::GroundedFOMC(
      reduction.sentence, reduction.vocabulary, reduction.domain_size);
  numeric::BigInt factorial = numeric::Factorial(reduction.domain_size);
  numeric::BigInt quotient, remainder;
  numeric::BigInt::DivMod(total, factorial, &quotient, &remainder);
  if (!remainder.IsZero()) {
    throw std::logic_error(
        "SharpSatViaFOMC: FOMC not divisible by (n+1)! — gadget violated");
  }
  return quotient;
}

}  // namespace swfomc::reductions
