#ifndef SWFOMC_REDUCTIONS_SHARP_SAT_H_
#define SWFOMC_REDUCTIONS_SHARP_SAT_H_

#include "logic/formula.h"
#include "logic/vocabulary.h"
#include "numeric/bigint.h"
#include "prop/prop_formula.h"

namespace swfomc::reductions {

/// Theorem 4.1 (1), hardness direction: reduction from #SAT to FOMC for
/// FO². Given a Boolean formula F over variables X_1..X_n (n >= 2), builds
/// the FO² sentence ϕ_F over σ = (A/1, B/1, C/1, R/2, S/2) enforcing the
/// Figure 2 gadget:
///   * unique, pairwise-distinct A-, B- and C-elements;
///   * an R-chain of exactly n elements from the A-element to the
///     B-element, with no A→B R-walk of any other length m ∈ [2n]∖{n}
///     (which pins R to exactly the chain);
///   * R avoids the C-element; S-edges go from the C-element to chain
///     elements only;
///   * F itself, with X_i replaced by γ_i = ∃x (α_i(x) ∧ ∃y S(y,x)),
///     where α_i(x) says "x is the i-th chain element".
/// Over a domain of size n+1:  FOMC(ϕ_F, n+1) = (n+1)! · #F.
///
/// (The S-edges are in one-to-one correspondence with the X_i; we pin S
/// targets to chain elements so no stray S-bit doubles the count.)
struct SharpSatReduction {
  logic::Vocabulary vocabulary;
  logic::Formula sentence;
  std::uint64_t domain_size;  // n + 1
};

SharpSatReduction EncodeSharpSat(const prop::PropFormula& boolean_formula,
                                 std::uint32_t num_variables);

/// #F computed through the reduction: FOMC(ϕ_F, n+1) / (n+1)!. Uses the
/// grounded engine, i.e. this is the "FOMC oracle solves #SAT" direction.
numeric::BigInt SharpSatViaFOMC(const prop::PropFormula& boolean_formula,
                                std::uint32_t num_variables);

/// The chain-position formula α_i(x) (1-based i), exposed for tests. Uses
/// only variables {x, y}.
logic::Formula ChainPositionFormula(const logic::Vocabulary& vocabulary,
                                    std::uint32_t i);

}  // namespace swfomc::reductions

#endif  // SWFOMC_REDUCTIONS_SHARP_SAT_H_
