#include "mcsat/walksat.h"

#include <algorithm>
#include <cmath>

namespace swfomc::mcsat {

namespace {

using prop::Clause;
using prop::Literal;
using prop::VarId;

bool ClauseSatisfied(const Clause& clause, const std::vector<bool>& assignment) {
  for (const Literal& l : clause) {
    if (assignment[l.variable] == l.positive) return true;
  }
  return false;
}

}  // namespace

WalkSat::WalkSat(prop::CnfFormula cnf, Options options, std::uint64_t seed)
    : cnf_(std::move(cnf)), options_(options), rng_(seed) {
  occurrences_.resize(cnf_.variable_count);
  for (std::size_t i = 0; i < cnf_.clauses.size(); ++i) {
    for (const Literal& l : cnf_.clauses[i]) {
      occurrences_[l.variable].push_back(i);
    }
  }
}

std::uint64_t WalkSat::BreakCount(const std::vector<bool>& assignment,
                                  VarId variable) const {
  // Clauses currently satisfied *only* by `variable`'s literal become
  // broken if it flips.
  std::uint64_t broken = 0;
  for (std::size_t index : occurrences_[variable]) {
    const Clause& clause = cnf_.clauses[index];
    bool this_satisfies = false;
    bool other_satisfies = false;
    for (const Literal& l : clause) {
      if (assignment[l.variable] == l.positive) {
        if (l.variable == variable) {
          this_satisfies = true;
        } else {
          other_satisfies = true;
          break;
        }
      }
    }
    if (this_satisfies && !other_satisfies) ++broken;
  }
  return broken;
}

std::optional<std::vector<bool>> WalkSat::Run(double sa_probability,
                                              double temperature) {
  std::vector<bool> assignment(cnf_.variable_count);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (std::uint32_t v = 0; v < cnf_.variable_count; ++v) {
    assignment[v] = rng_() & 1;
  }

  for (std::uint64_t flip = 0; flip < options_.max_flips; ++flip) {
    // Collect unsatisfied clauses.
    std::vector<std::size_t> unsatisfied;
    for (std::size_t i = 0; i < cnf_.clauses.size(); ++i) {
      if (!ClauseSatisfied(cnf_.clauses[i], assignment)) {
        unsatisfied.push_back(i);
      }
    }
    if (unsatisfied.empty()) return assignment;

    if (sa_probability > 0.0 && coin(rng_) < sa_probability) {
      // Simulated-annealing move: flip a uniformly random variable,
      // accept with the Metropolis rule on the unsatisfied-clause count.
      VarId v = static_cast<VarId>(rng_() % cnf_.variable_count);
      std::int64_t delta = 0;  // change in #unsatisfied if v flips
      for (std::size_t index : occurrences_[v]) {
        const Clause& clause = cnf_.clauses[index];
        bool now = ClauseSatisfied(clause, assignment);
        assignment[v] = !assignment[v];
        bool then = ClauseSatisfied(clause, assignment);
        assignment[v] = !assignment[v];
        delta += static_cast<std::int64_t>(!then) -
                 static_cast<std::int64_t>(!now);
      }
      if (delta <= 0 || coin(rng_) < std::exp(-static_cast<double>(delta) /
                                              temperature)) {
        assignment[v] = !assignment[v];
      }
      continue;
    }

    // WalkSAT move: pick a random unsatisfied clause; flip either a
    // random variable in it (noise) or the min-break variable (greedy).
    const Clause& clause =
        cnf_.clauses[unsatisfied[rng_() % unsatisfied.size()]];
    VarId chosen;
    if (coin(rng_) < options_.noise) {
      chosen = clause[rng_() % clause.size()].variable;
    } else {
      chosen = clause[0].variable;
      std::uint64_t best = BreakCount(assignment, chosen);
      for (const Literal& l : clause) {
        std::uint64_t breaks = BreakCount(assignment, l.variable);
        if (breaks < best) {
          best = breaks;
          chosen = l.variable;
        }
      }
    }
    assignment[chosen] = !assignment[chosen];
  }
  return std::nullopt;
}

std::optional<std::vector<bool>> WalkSat::Solve() {
  for (std::uint64_t attempt = 0; attempt < options_.max_tries; ++attempt) {
    auto result = Run(/*sa_probability=*/0.0, /*temperature=*/1.0);
    if (result.has_value()) return result;
  }
  return std::nullopt;
}

std::optional<std::vector<bool>> WalkSat::Sample(double sa_probability,
                                                 double temperature) {
  for (std::uint64_t attempt = 0; attempt < options_.max_tries; ++attempt) {
    auto result = Run(sa_probability, temperature);
    if (result.has_value()) return result;
  }
  return std::nullopt;
}

}  // namespace swfomc::mcsat
