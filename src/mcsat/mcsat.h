#ifndef SWFOMC_MCSAT_MCSAT_H_
#define SWFOMC_MCSAT_MCSAT_H_

#include <cstdint>
#include <random>
#include <vector>

#include "logic/formula.h"
#include "logic/structure.h"
#include "mcsat/walksat.h"
#include "mln/mln.h"
#include "prop/cnf.h"
#include "prop/prop_formula.h"

namespace swfomc::mcsat {

/// Options for the MC-SAT chain.
struct McSatOptions {
  std::uint64_t burn_in = 100;   // discarded leading samples
  std::uint64_t samples = 1000;  // kept samples
  std::uint64_t seed = 1;
  /// Slice-sampling step: probability of an annealing move inside
  /// SampleSAT, and its fixed temperature.
  double sa_probability = 0.5;
  double temperature = 0.1;
  WalkSat::Options walksat;
};

/// MC-SAT (Poon-Domingos), the approximate MLN inference algorithm the
/// paper's introduction contrasts with exact WFOMC: today's MLN systems
/// (Alchemy, Tuffy) use this MCMC procedure, whose convergence guarantee
/// requires a *uniform* sampler over the satisfying assignments of the
/// current constraint set — but practical implementations substitute
/// SampleSAT, which has no uniformity guarantee. This implementation is
/// the honest baseline: the benches compare its estimates and failure
/// modes against the exact WFOMC reduction of Example 1.2.
///
/// Supported networks: every constraint's quantifier-free matrix must
/// ground to CNF by distribution (no auxiliary variables — the usual
/// clausal-MLN setting). Soft weights w > 0, w != 1; a weight w < 1 is
/// normalized to (1/w, ¬ϕ), which defines the same distribution.
class McSatSampler {
 public:
  McSatSampler(const mln::MarkovLogicNetwork& network,
               std::uint64_t domain_size, McSatOptions options = {});

  /// Estimated Pr_MLN(query) as the fraction of post-burn-in samples
  /// satisfying the query. Approximate by design (the paper's point);
  /// rerunning with another seed gives another estimate.
  double EstimateProbability(const logic::Formula& query);

  /// One full MC-SAT chain; returns the kept samples as structures (for
  /// multi-query estimation and diagnostics).
  std::vector<logic::Structure> DrawSamples();

  /// Number of ground soft constraint instances.
  std::size_t ground_soft_count() const { return soft_.size(); }
  /// Number of hard ground clauses.
  std::size_t hard_clause_count() const { return hard_clauses_.size(); }

 private:
  struct GroundSoft {
    double keep_probability;         // 1 - 1/w
    prop::PropFormula formula;       // ground formula (for the sat test)
    std::vector<prop::Clause> cnf;   // its clausal form
  };

  // One MC-SAT step: slice-select constraints satisfied by `current`,
  // then SampleSAT a world of the selection. Returns false if the
  // sampler failed to find a satisfying world (chain stays put).
  bool Step(std::vector<bool>* current);

  std::uint64_t domain_size_;
  std::uint64_t tuple_count_;
  McSatOptions options_;
  std::mt19937_64 rng_;
  const logic::Vocabulary* vocabulary_;
  std::vector<prop::Clause> hard_clauses_;
  std::vector<GroundSoft> soft_;
};

}  // namespace swfomc::mcsat

#endif  // SWFOMC_MCSAT_MCSAT_H_
