#include "mcsat/mcsat.h"

#include <stdexcept>
#include <string>

#include "grounding/lineage.h"
#include "grounding/tuple_index.h"
#include "logic/evaluate.h"
#include "logic/transform.h"

namespace swfomc::mcsat {

namespace {

using numeric::BigRational;
using prop::Clause;
using prop::Literal;
using prop::PropFormula;
using prop::PropKind;

constexpr std::size_t kMaxGroundClauses = 100000;

// CNF by distribution, without auxiliary variables (Tseitin would skew
// the sampling space). `negated` pushes pending negation down De Morgan
// style, so inputs need not be in NNF.
void DistributeToClauses(const PropFormula& formula, bool negated,
                         std::vector<Clause>* out) {
  switch (formula->kind()) {
    case PropKind::kTrue:
      if (negated) out->push_back(Clause{});
      return;
    case PropKind::kFalse:
      if (!negated) out->push_back(Clause{});
      return;
    case PropKind::kVar:
      out->push_back(Clause{Literal{formula->variable(), !negated}});
      return;
    case PropKind::kNot:
      DistributeToClauses(formula->child(), !negated, out);
      return;
    case PropKind::kAnd:
    case PropKind::kOr: {
      bool conjunctive = (formula->kind() == PropKind::kAnd) != negated;
      if (conjunctive) {
        for (const PropFormula& child : formula->children()) {
          DistributeToClauses(child, negated, out);
          if (out->size() > kMaxGroundClauses) {
            throw std::invalid_argument(
                "McSatSampler: constraint grounds to too many clauses");
          }
        }
        return;
      }
      // Disjunction: distribute the children's clause sets.
      std::vector<Clause> result{Clause{}};
      for (const PropFormula& child : formula->children()) {
        std::vector<Clause> child_clauses;
        DistributeToClauses(child, negated, &child_clauses);
        std::vector<Clause> next;
        next.reserve(result.size() * child_clauses.size());
        for (const Clause& a : result) {
          for (const Clause& b : child_clauses) {
            Clause merged = a;
            merged.insert(merged.end(), b.begin(), b.end());
            next.push_back(std::move(merged));
          }
        }
        result = std::move(next);
        if (result.size() > kMaxGroundClauses) {
          throw std::invalid_argument(
              "McSatSampler: constraint grounds to too many clauses");
        }
      }
      out->insert(out->end(), result.begin(), result.end());
      return;
    }
  }
  throw std::logic_error("DistributeToClauses: unreachable");
}

std::vector<Clause> ToClauses(const PropFormula& formula) {
  std::vector<Clause> clauses;
  DistributeToClauses(formula, /*negated=*/false, &clauses);
  return clauses;
}

// Enumerates all groundings ϕ[a⃗/x⃗] of the constraint formula over [n].
template <typename Visit>
void ForEachGrounding(const logic::Formula& formula, std::uint64_t n,
                      const Visit& visit) {
  std::set<std::string> free_set = logic::FreeVariables(formula);
  std::vector<std::string> free_vars(free_set.begin(), free_set.end());
  if (free_vars.empty()) {
    visit(formula);
    return;
  }
  if (n == 0) return;
  std::vector<std::uint64_t> assignment(free_vars.size(), 0);
  for (;;) {
    logic::Formula ground = formula;
    for (std::size_t i = 0; i < free_vars.size(); ++i) {
      ground = logic::SubstituteConstant(ground, free_vars[i], assignment[i]);
    }
    visit(ground);
    std::size_t position = 0;
    while (position < assignment.size() && ++assignment[position] == n) {
      assignment[position] = 0;
      ++position;
    }
    if (position == assignment.size()) break;
  }
}

}  // namespace

McSatSampler::McSatSampler(const mln::MarkovLogicNetwork& network,
                           std::uint64_t domain_size, McSatOptions options)
    : domain_size_(domain_size),
      options_(options),
      rng_(options.seed),
      vocabulary_(&network.vocabulary()) {
  grounding::TupleIndex index(network.vocabulary(), domain_size);
  tuple_count_ = index.TupleCount();

  for (const mln::MarkovLogicNetwork::Constraint& constraint :
       network.constraints()) {
    if (!constraint.weight.has_value()) {
      // Hard constraint: its ground clauses always apply.
      ForEachGrounding(constraint.formula, domain_size,
                       [&](const logic::Formula& ground) {
                         PropFormula lineage =
                             grounding::GroundLineage(ground, index);
                         std::vector<Clause> clauses = ToClauses(lineage);
                         hard_clauses_.insert(hard_clauses_.end(),
                                              clauses.begin(), clauses.end());
                       });
      continue;
    }
    BigRational weight = *constraint.weight;
    if (weight.Sign() <= 0) {
      throw std::invalid_argument(
          "McSatSampler: soft weights must be positive");
    }
    if (weight.IsOne()) continue;  // no-op constraint
    bool negate = weight < BigRational(1);
    if (negate) weight = BigRational(1) / weight;  // (w,ϕ) ≡ (1/w,¬ϕ)
    double keep = 1.0 - 1.0 / weight.ToDouble();
    ForEachGrounding(
        constraint.formula, domain_size, [&](const logic::Formula& ground) {
          PropFormula lineage = grounding::GroundLineage(ground, index);
          if (negate) lineage = prop::PropNot(lineage);
          GroundSoft soft;
          soft.keep_probability = keep;
          soft.formula = lineage;
          soft.cnf = ToClauses(lineage);
          soft_.push_back(std::move(soft));
        });
  }
}

bool McSatSampler::Step(std::vector<bool>* current) {
  std::vector<Clause> selected = hard_clauses_;
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (const GroundSoft& soft : soft_) {
    if (prop::EvaluateProp(soft.formula, *current) &&
        coin(rng_) < soft.keep_probability) {
      selected.insert(selected.end(), soft.cnf.begin(), soft.cnf.end());
    }
  }
  prop::CnfFormula cnf;
  cnf.variable_count = static_cast<std::uint32_t>(tuple_count_);
  cnf.clauses = std::move(selected);
  WalkSat sampler(std::move(cnf), options_.walksat, rng_());
  auto next = sampler.Sample(options_.sa_probability, options_.temperature);
  if (!next.has_value()) return false;
  *current = std::move(*next);
  return true;
}

std::vector<logic::Structure> McSatSampler::DrawSamples() {
  // Initial state: any world satisfying the hard constraints.
  prop::CnfFormula hard;
  hard.variable_count = static_cast<std::uint32_t>(tuple_count_);
  hard.clauses = hard_clauses_;
  WalkSat initializer(std::move(hard), options_.walksat, rng_());
  auto initial = initializer.Solve();
  if (!initial.has_value()) {
    throw std::runtime_error(
        "McSatSampler: could not satisfy the hard constraints (UNSAT or "
        "search budget exhausted)");
  }
  std::vector<bool> current = std::move(*initial);

  std::vector<logic::Structure> samples;
  samples.reserve(options_.samples);
  for (std::uint64_t i = 0; i < options_.burn_in + options_.samples; ++i) {
    Step(&current);  // on failure the chain stays put (still a sample)
    if (i < options_.burn_in) continue;
    logic::Structure world(*vocabulary_, domain_size_);
    for (std::uint64_t bit = 0; bit < tuple_count_; ++bit) {
      world.SetBit(bit, current[bit]);
    }
    samples.push_back(std::move(world));
  }
  return samples;
}

double McSatSampler::EstimateProbability(const logic::Formula& query) {
  std::vector<logic::Structure> samples = DrawSamples();
  if (samples.empty()) return 0.0;
  std::uint64_t hits = 0;
  for (const logic::Structure& world : samples) {
    if (logic::Evaluate(world, query)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(samples.size());
}

}  // namespace swfomc::mcsat
