#ifndef SWFOMC_MCSAT_WALKSAT_H_
#define SWFOMC_MCSAT_WALKSAT_H_

#include <cstdint>
#include <optional>
#include <random>
#include <vector>

#include "prop/cnf.h"

namespace swfomc::mcsat {

/// WalkSAT-style stochastic local search (Selman-Kautz-Cohen), the solver
/// underneath SampleSAT. Section 1 of the paper: today's MLN systems rely
/// on MC-SAT, whose theoretical guarantees require a *uniform* sampler of
/// satisfying assignments, while the implementations use SampleSAT, which
/// provides no uniformity guarantee — this module is that baseline, built
/// so the benches can compare it against exact WFOMC inference.
class WalkSat {
 public:
  struct Options {
    /// Probability of a random-walk move (vs a greedy min-break move).
    double noise = 0.5;
    /// Flips before giving up on one try.
    std::uint64_t max_flips = 100000;
    /// Independent restarts.
    std::uint64_t max_tries = 10;
  };

  WalkSat(prop::CnfFormula cnf, Options options, std::uint64_t seed);

  /// A satisfying assignment (indexed by VarId), or nullopt when the
  /// search budget is exhausted. Incomplete by design: failure does not
  /// prove unsatisfiability.
  std::optional<std::vector<bool>> Solve();

  /// SampleSAT (Wei-Erenrich-Selman): interleaves WalkSAT repair moves
  /// with simulated-annealing moves (accepted with the Metropolis rule at
  /// fixed temperature) to make the exit distribution over solutions
  /// *closer* to uniform — but not actually uniform, which is the paper's
  /// point. `sa_probability` is the chance of an annealing move per step.
  std::optional<std::vector<bool>> Sample(double sa_probability = 0.5,
                                          double temperature = 0.1);

 private:
  // One local-search run from a random assignment; flips until satisfied
  // or out of budget. `sa_probability` = 0 gives plain WalkSAT.
  std::optional<std::vector<bool>> Run(double sa_probability,
                                       double temperature);

  // Number of clauses a flip of `variable` would newly break.
  std::uint64_t BreakCount(const std::vector<bool>& assignment,
                           prop::VarId variable) const;

  prop::CnfFormula cnf_;
  Options options_;
  std::mt19937_64 rng_;
  // occurrences_[v]: indices of clauses containing variable v.
  std::vector<std::vector<std::size_t>> occurrences_;
};

}  // namespace swfomc::mcsat

#endif  // SWFOMC_MCSAT_WALKSAT_H_
