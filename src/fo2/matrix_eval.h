#ifndef SWFOMC_FO2_MATRIX_EVAL_H_
#define SWFOMC_FO2_MATRIX_EVAL_H_

#include <cstddef>
#include <vector>

#include "logic/formula.h"
#include "logic/vocabulary.h"
#include "numeric/rational.h"

namespace swfomc::fo2 {

/// Shared machinery of the Appendix C cell algorithm and the lifted
/// compiler: a 1-type, the pair environment a quantifier-free FO² matrix
/// is evaluated under, and the boolean evaluator itself. Both consumers
/// enumerate exactly the same cells and off-diagonal codes; the counter
/// folds weights into numbers on the spot while the compiler emits weight
/// leaves — the satisfaction checks below are weight-independent, which is
/// what makes one compiled circuit exact for every weight vector.

/// A 1-type: truth values for the unary atoms U(x) and diagonal binary
/// atoms R(x,x) of one element.
struct Cell {
  std::vector<bool> unary;  // indexed like the unary-relation list
  std::vector<bool> diagonal;
  numeric::BigRational weight;  // product of the corresponding tuple
                                // weights (unused by the lifted compiler)
};

/// Evaluation environment for the quantifier-free matrix over a pair
/// (a,b): the cells of a and b plus the off-diagonal bits for each binary
/// R.
struct PairEnv {
  const Cell* cell_x;  // 1-type of the element bound to variable x
  const Cell* cell_y;
  // Indexed like the binary-relation list: truth of R(x,y) and R(y,x).
  const std::vector<bool>* xy;
  const std::vector<bool>* yx;
  bool same_element;  // true when evaluating ψ(c,c)
};

class MatrixEvaluator {
 public:
  MatrixEvaluator(const logic::Vocabulary& vocabulary,
                  std::vector<logic::RelationId> unary_relations,
                  std::vector<logic::RelationId> binary_relations);

  bool Eval(const logic::Formula& formula, const PairEnv& env) const;

 private:
  std::vector<logic::RelationId> unary_relations_;
  std::vector<logic::RelationId> binary_relations_;
  std::vector<std::size_t> unary_slot_;
  std::vector<std::size_t> binary_slot_;
};

/// Replaces a 0-ary atom by a constant truth value (Shannon expansion).
logic::Formula SubstituteZeroAry(const logic::Formula& formula,
                                 logic::RelationId relation, bool value);

}  // namespace swfomc::fo2

#endif  // SWFOMC_FO2_MATRIX_EVAL_H_
