#ifndef SWFOMC_FO2_LIFTED_COMPILER_H_
#define SWFOMC_FO2_LIFTED_COMPILER_H_

#include <cstdint>

#include "logic/formula.h"
#include "logic/vocabulary.h"
#include "nnf/lifted_circuit.h"

namespace swfomc::fo2 {

/// Instrumentation for the lifted compiler (reported by `swfomc compile`).
struct LiftedCompileStats {
  std::size_t unary_predicates = 0;
  std::size_t binary_predicates = 0;
  std::size_t zeroary_predicates = 0;
  std::size_t cells = 0;        // 1-types enumerated, summed over
                                // zero-ary Shannon branches
  std::size_t valid_cells = 0;  // cells whose diagonal satisfies ψ(x,x)
};

/// True when CompileLifted accepts the sentence: a sentence (no free
/// variables) in FO² over relations of arity <= 2, without domain
/// constants — the same fragment check Engine routes to the cell
/// algorithm. Weight-independent: liftability is a property of the
/// sentence and the vocabulary's arities alone.
bool CanCompileLifted(const logic::Formula& sentence,
                      const logic::Vocabulary& vocabulary);

/// Compiles an FO² sentence into a domain-parametric lifted circuit: the
/// same recursion as the direct cell algorithm (Shannon expansion of the
/// zero-ary predicates, 1-type enumeration, pairwise off-diagonal sums,
/// composition sum), but emitting structure instead of numbers. The
/// satisfaction checks driving the recursion are weight-independent, and
/// — unlike the direct counter, which skips a Shannon branch whose
/// compile-time weight is zero — both branches are always emitted, so the
/// circuit evaluates bit-identically to CellAlgorithmWFOMC for *every*
/// (n >= 1, weight vector) pair, zero and negative weights included.
///
/// The circuit's relation table is the extended (Scott/Skolem) vocabulary
/// in id order; the original vocabulary's relations are a prefix of it,
/// so per-relation reweights apply by original id.
///
/// Throws std::invalid_argument for sentences outside the fragment (see
/// ToUniversalForm) and when the normal form exceeds 20 unary + binary
/// predicates (the same guard as the direct algorithm).
nnf::LiftedCircuit CompileLifted(const logic::Formula& sentence,
                                 const logic::Vocabulary& vocabulary,
                                 LiftedCompileStats* stats = nullptr);

}  // namespace swfomc::fo2

#endif  // SWFOMC_FO2_LIFTED_COMPILER_H_
