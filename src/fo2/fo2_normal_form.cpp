#include "fo2/fo2_normal_form.h"

#include <stdexcept>

#include "logic/transform.h"

namespace swfomc::fo2 {

namespace {

using logic::Formula;
using logic::FormulaKind;

// A Scott definition: D(params) <=> Q v. body, with body quantifier-free.
struct Definition {
  logic::RelationId relation;
  std::vector<std::string> params;  // 0 or 1 variable
  bool is_forall;                   // quantifier Q
  std::string bound_variable;       // v
  Formula body;
};

Formula FindInnermostQuantifier(const Formula& formula) {
  for (const Formula& child : formula->children()) {
    Formula found = FindInnermostQuantifier(child);
    if (found != nullptr) return found;
  }
  if (formula->kind() == FormulaKind::kForall ||
      formula->kind() == FormulaKind::kExists) {
    return formula;
  }
  return nullptr;
}

Formula ReplaceNode(const Formula& formula, const Formula& target,
                    const Formula& replacement) {
  if (formula.get() == target.get()) return replacement;
  if (formula->children().empty()) return formula;
  std::vector<Formula> children;
  children.reserve(formula->children().size());
  bool changed = false;
  for (const Formula& child : formula->children()) {
    Formula mapped = ReplaceNode(child, target, replacement);
    changed |= mapped.get() != child.get();
    children.push_back(std::move(mapped));
  }
  if (!changed) return formula;
  switch (formula->kind()) {
    case FormulaKind::kNot:
      return Not(children[0]);
    case FormulaKind::kAnd:
      return And(std::move(children));
    case FormulaKind::kOr:
      return Or(std::move(children));
    case FormulaKind::kForall:
      return Forall(formula->variable(), children[0]);
    case FormulaKind::kExists:
      return Exists(formula->variable(), children[0]);
    default:
      throw std::logic_error("fo2::ReplaceNode: unexpected node in NNF");
  }
}

void CheckConstantsAbsent(const Formula& formula) {
  if (formula->kind() == FormulaKind::kAtom ||
      formula->kind() == FormulaKind::kEquality) {
    for (const logic::Term& t : formula->arguments()) {
      if (t.IsConstant()) {
        throw std::invalid_argument(
            "ToUniversalForm: domain constants are not supported on the "
            "lifted FO2 path");
      }
    }
  }
  for (const Formula& child : formula->children()) {
    CheckConstantsAbsent(child);
  }
}

// Renames the free variables of a quantifier-free matrix to {x, y}.
Formula CanonicalizeVariables(const Formula& matrix) {
  std::set<std::string> free_vars = logic::FreeVariables(matrix);
  if (free_vars.size() > 2) {
    throw std::logic_error("fo2: matrix with more than 2 free variables");
  }
  std::vector<std::string> ordered(free_vars.begin(), free_vars.end());
  Formula result = matrix;
  // Two-phase rename to avoid collisions with the canonical names.
  const std::string tmp0 = "fo2_tmp0", tmp1 = "fo2_tmp1";
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    result = logic::RenameFreeVariable(result, ordered[i],
                                       i == 0 ? tmp0 : tmp1);
  }
  result = logic::RenameFreeVariable(result, tmp0, UniversalForm::x());
  result = logic::RenameFreeVariable(result, tmp1, UniversalForm::y());
  return result;
}

}  // namespace

const std::string& UniversalForm::x() {
  static const std::string name = "x";
  return name;
}

const std::string& UniversalForm::y() {
  static const std::string name = "y";
  return name;
}

UniversalForm ToUniversalForm(const logic::Formula& sentence,
                              const logic::Vocabulary& vocabulary) {
  if (!logic::IsSentence(sentence)) {
    throw std::invalid_argument("ToUniversalForm: input has free variables");
  }
  if (!logic::InFragmentFOk(sentence, 2)) {
    throw std::invalid_argument(
        "ToUniversalForm: sentence uses more than 2 distinct variables");
  }
  if (vocabulary.MaxArity() > 2) {
    throw std::invalid_argument(
        "ToUniversalForm: relation arity > 2 is not supported on the "
        "lifted FO2 path (ground instead)");
  }
  CheckConstantsAbsent(sentence);

  UniversalForm result;
  result.vocabulary = vocabulary;

  Formula main = logic::ToNNF(sentence);

  // Phase 2: Scott-style extraction of every quantified subformula.
  std::vector<Definition> definitions;
  while (logic::ContainsQuantifier(main)) {
    Formula target = FindInnermostQuantifier(main);
    std::set<std::string> free_vars = logic::FreeVariables(target);
    if (free_vars.size() > 1) {
      throw std::logic_error(
          "fo2: innermost quantified subformula with 2 free variables "
          "cannot occur in FO2");
    }
    Definition def;
    def.params.assign(free_vars.begin(), free_vars.end());
    def.is_forall = target->kind() == FormulaKind::kForall;
    def.bound_variable = target->variable();
    def.body = target->child();
    def.relation = result.vocabulary.AddRelation(
        result.vocabulary.FreshName("Def"), def.params.size());
    definitions.push_back(def);

    std::vector<logic::Term> args;
    for (const std::string& p : def.params) {
      args.push_back(logic::Term::Var(p));
    }
    main = ReplaceNode(main, target, logic::Atom(def.relation, args));
  }
  // `main` is now variable-free (a combination of 0-ary atoms).

  // Phase 2b: expand definitions into prenex ∀∀ / ∀∃ conjuncts, then
  // Phase 3: Skolemize the ∀∃ ones (Lemma 3.3, weights (1, -1)).
  std::vector<Formula> universal_matrices;  // quantifier-free conjuncts
  universal_matrices.push_back(main);

  for (const Definition& def : definitions) {
    std::vector<logic::Term> args;
    for (const std::string& p : def.params) {
      args.push_back(logic::Term::Var(p));
    }
    Formula d_atom = logic::Atom(def.relation, args);
    if (def.is_forall) {
      // D(u) => ∀v body  ~~>  ∀u∀v (¬D(u) ∨ body).
      universal_matrices.push_back(
          CanonicalizeVariables(logic::ToNNF(Or(Not(d_atom), def.body))));
      // ∀v body => D(u)  ~~>  ∀u∃v (¬body ∨ D(u))  ~~> Skolemize:
      // ∀u∀v (¬(¬body ∨ D(u)) ∨ A(u)) = ∀u∀v ((body ∧ ¬D(u)) ∨ A(u)).
      logic::RelationId skolem = result.vocabulary.AddRelation(
          result.vocabulary.FreshName("Sk"), def.params.size(),
          numeric::BigRational(1), numeric::BigRational(-1));
      Formula a_atom = logic::Atom(skolem, args);
      universal_matrices.push_back(CanonicalizeVariables(
          logic::ToNNF(Or(And(def.body, Not(d_atom)), a_atom))));
    } else {
      // ∃v body => D(u)  ~~>  ∀u∀v (¬body ∨ D(u)).
      universal_matrices.push_back(
          CanonicalizeVariables(logic::ToNNF(Or(Not(def.body), d_atom))));
      // D(u) => ∃v body  ~~>  ∀u∃v (¬D(u) ∨ body)  ~~> Skolemize:
      // ∀u∀v ((D(u) ∧ ¬body) ∨ A(u)).
      logic::RelationId skolem = result.vocabulary.AddRelation(
          result.vocabulary.FreshName("Sk"), def.params.size(),
          numeric::BigRational(1), numeric::BigRational(-1));
      Formula a_atom = logic::Atom(skolem, args);
      universal_matrices.push_back(CanonicalizeVariables(
          logic::ToNNF(Or(And(d_atom, Not(def.body)), a_atom))));
    }
  }

  // Phase 4: one matrix. ∀x (∧_i φ_i(x)) ∧ ∀x∀y (∧_j ψ_j(x,y)) merges into
  // ∀x∀y of the conjunction (domains are non-empty).
  result.matrix = And(std::move(universal_matrices));
  return result;
}

}  // namespace swfomc::fo2
