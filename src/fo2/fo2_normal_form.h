#ifndef SWFOMC_FO2_FO2_NORMAL_FORM_H_
#define SWFOMC_FO2_FO2_NORMAL_FORM_H_

#include "logic/formula.h"
#include "logic/vocabulary.h"

namespace swfomc::fo2 {

/// The universal two-variable form every FO² sentence is reduced to before
/// the cell algorithm runs: WFOMC(Φ, n, w, w̄) = WFOMC(∀x∀y ψ, n, w', w̄')
/// where ψ is quantifier-free over an extended vocabulary.
struct UniversalForm {
  /// Quantifier-free matrix; free variables ⊆ {x(), y()}.
  logic::Formula matrix;
  /// Extended weighted vocabulary (Scott definition predicates with
  /// weights (1,1); Skolem predicates with weights (1,-1)).
  logic::Vocabulary vocabulary;

  static const std::string& x();
  static const std::string& y();
};

/// Reduces an FO² sentence to UniversalForm. The pipeline is the one
/// Appendix C sketches:
///   1. implication elimination + NNF;
///   2. Scott-style extraction: every innermost quantified subformula
///      Qv ψ(u) is replaced by a fresh definition atom D(u) (arity ≤ 1,
///      weights (1,1)) with defining sentences ∀u (D(u) ⇔ Qv ψ);
///      definitions expand into prenex conjuncts of shape ∀∀ and ∀∃;
///   3. Lemma 3.3 Skolemization of each ∀∃ conjunct (fresh predicate with
///      weights (1,-1));
///   4. conjunction of all ∀∀ matrices with variables renamed to {x, y}.
///
/// Requirements (std::invalid_argument otherwise): the input is a sentence,
/// uses at most 2 distinct variable names, relation arities are ≤ 2, and
/// no domain constants occur. Equality atoms are allowed and survive into
/// the matrix (the cell algorithm evaluates them natively, so Lemma 3.5 is
/// not needed on this path).
UniversalForm ToUniversalForm(const logic::Formula& sentence,
                              const logic::Vocabulary& vocabulary);

}  // namespace swfomc::fo2

#endif  // SWFOMC_FO2_FO2_NORMAL_FORM_H_
