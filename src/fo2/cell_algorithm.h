#ifndef SWFOMC_FO2_CELL_ALGORITHM_H_
#define SWFOMC_FO2_CELL_ALGORITHM_H_

#include <cstdint>

#include "fo2/fo2_normal_form.h"
#include "numeric/combinatorics.h"
#include "numeric/rational.h"

namespace swfomc::fo2 {

/// Instrumentation for the cell algorithm (reported by the benches).
struct CellStats {
  std::size_t unary_predicates = 0;
  std::size_t binary_predicates = 0;
  std::size_t zeroary_predicates = 0;
  std::size_t cells = 0;        // 1-types enumerated, summed over
                                // zero-ary Shannon branches
  std::size_t valid_cells = 0;  // cells whose diagonal satisfies ψ(x,x),
                                // summed over Shannon branches
  std::uint64_t composition_terms = 0;
};

/// The Appendix C lifted algorithm on a prepared universal form:
///
///   WFOMC(∀x∀y ψ, n) = Σ_{n_1+..+n_C = n} (n choose n_1..n_C)
///       Π_l (u_l)^{n_l} · Π_l (r_ll)^{C(n_l,2)} · Π_{k<l} (r_kl)^{n_k n_l}
///
/// where cells (1-types) l range over truth assignments to {U(x)} ∪
/// {R(x,x)}, u_l is the weight of one element realizing cell l (unary +
/// diagonal tuples; zero unless ψ(x,x) holds), and r_kl is the weighted
/// sum over the off-diagonal atoms {R(a,b), R(b,a)} of assignments
/// satisfying ψ(a,b) ∧ ψ(b,a). Zero-ary predicates are Shannon-expanded
/// first (Appendix C). Runtime is polynomial in n for a fixed sentence:
/// O(n^{C-1}) terms with C a sentence-only constant.
numeric::BigRational CellAlgorithmWFOMC(const UniversalForm& form,
                                        std::uint64_t domain_size,
                                        CellStats* stats = nullptr);

/// Same algorithm with a caller-owned binomial table, so a sweep over
/// domain sizes builds each Pascal row once instead of once per point
/// (Engine::WFOMCSweep reuses one table for the whole sweep).
numeric::BigRational CellAlgorithmWFOMC(const UniversalForm& form,
                                        std::uint64_t domain_size,
                                        numeric::BinomialTable* binomials,
                                        CellStats* stats = nullptr);

/// End-to-end symmetric WFOMC for an FO² sentence: normal form + cell
/// algorithm. Throws std::invalid_argument for sentences outside the
/// supported fragment (see ToUniversalForm).
numeric::BigRational LiftedWFOMC(const logic::Formula& sentence,
                                 const logic::Vocabulary& vocabulary,
                                 std::uint64_t domain_size,
                                 CellStats* stats = nullptr);

/// FOMC(Φ, n) via the lifted algorithm (weights forced to (1,1)).
numeric::BigInt LiftedFOMC(const logic::Formula& sentence,
                           const logic::Vocabulary& vocabulary,
                           std::uint64_t domain_size);

/// Pr(Φ) over the symmetric tuple-independent distribution of the
/// vocabulary: LiftedWFOMC / Π_tuples (w + w̄).
numeric::BigRational LiftedProbability(const logic::Formula& sentence,
                                       const logic::Vocabulary& vocabulary,
                                       std::uint64_t domain_size);

}  // namespace swfomc::fo2

#endif  // SWFOMC_FO2_CELL_ALGORITHM_H_
