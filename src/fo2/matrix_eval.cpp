#include "fo2/matrix_eval.h"

#include <stdexcept>
#include <utility>

#include "fo2/fo2_normal_form.h"

namespace swfomc::fo2 {

using logic::Formula;
using logic::FormulaKind;
using logic::RelationId;

namespace {

bool IsX(const logic::Term& term) { return term.name == UniversalForm::x(); }

}  // namespace

Formula SubstituteZeroAry(const Formula& formula, RelationId relation,
                          bool value) {
  switch (formula->kind()) {
    case FormulaKind::kAtom:
      if (formula->relation() == relation && formula->arguments().empty()) {
        return value ? logic::True() : logic::False();
      }
      return formula;
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kEquality:
      return formula;
    default: {
      std::vector<Formula> children;
      children.reserve(formula->children().size());
      for (const Formula& child : formula->children()) {
        children.push_back(SubstituteZeroAry(child, relation, value));
      }
      switch (formula->kind()) {
        case FormulaKind::kNot:
          return Not(children[0]);
        case FormulaKind::kAnd:
          return And(std::move(children));
        case FormulaKind::kOr:
          return Or(std::move(children));
        case FormulaKind::kImplies:
          return Implies(children[0], children[1]);
        case FormulaKind::kIff:
          return Iff(children[0], children[1]);
        default:
          throw std::logic_error("SubstituteZeroAry: quantifier in matrix");
      }
    }
  }
}

MatrixEvaluator::MatrixEvaluator(const logic::Vocabulary& vocabulary,
                                 std::vector<RelationId> unary_relations,
                                 std::vector<RelationId> binary_relations)
    : unary_relations_(std::move(unary_relations)),
      binary_relations_(std::move(binary_relations)) {
  unary_slot_.assign(vocabulary.size(), SIZE_MAX);
  binary_slot_.assign(vocabulary.size(), SIZE_MAX);
  for (std::size_t i = 0; i < unary_relations_.size(); ++i) {
    unary_slot_[unary_relations_[i]] = i;
  }
  for (std::size_t i = 0; i < binary_relations_.size(); ++i) {
    binary_slot_[binary_relations_[i]] = i;
  }
}

bool MatrixEvaluator::Eval(const Formula& formula, const PairEnv& env) const {
  switch (formula->kind()) {
    case FormulaKind::kTrue:
      return true;
    case FormulaKind::kFalse:
      return false;
    case FormulaKind::kEquality: {
      bool left_is_x = IsX(formula->arguments()[0]);
      bool right_is_x = IsX(formula->arguments()[1]);
      if (left_is_x == right_is_x) return true;  // x=x or y=y
      return env.same_element;                   // x=y
    }
    case FormulaKind::kAtom: {
      RelationId r = formula->relation();
      const auto& args = formula->arguments();
      if (args.size() == 1) {
        bool is_x = IsX(args[0]) || env.same_element;
        const Cell* cell = is_x ? env.cell_x : env.cell_y;
        return cell->unary[unary_slot_[r]];
      }
      if (args.size() == 2) {
        bool first_x = IsX(args[0]) || env.same_element;
        bool second_x = IsX(args[1]) || env.same_element;
        std::size_t slot = binary_slot_[r];
        if (first_x && second_x) return env.cell_x->diagonal[slot];
        if (!first_x && !second_x) return env.cell_y->diagonal[slot];
        if (first_x) return (*env.xy)[slot];
        return (*env.yx)[slot];
      }
      throw std::logic_error("MatrixEvaluator: unexpected arity");
    }
    case FormulaKind::kNot:
      return !Eval(formula->child(), env);
    case FormulaKind::kAnd:
      for (const Formula& child : formula->children()) {
        if (!Eval(child, env)) return false;
      }
      return true;
    case FormulaKind::kOr:
      for (const Formula& child : formula->children()) {
        if (Eval(child, env)) return true;
      }
      return false;
    case FormulaKind::kImplies:
      return !Eval(formula->child(0), env) || Eval(formula->child(1), env);
    case FormulaKind::kIff:
      return Eval(formula->child(0), env) == Eval(formula->child(1), env);
    default:
      throw std::logic_error("MatrixEvaluator: quantifier in matrix");
  }
}

}  // namespace swfomc::fo2
