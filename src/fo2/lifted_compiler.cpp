#include "fo2/lifted_compiler.h"

#include <functional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "fo2/fo2_normal_form.h"
#include "fo2/matrix_eval.h"

namespace swfomc::fo2 {

namespace {

using logic::Formula;
using logic::RelationId;
using nnf::LiftedCircuit;
using numeric::BigRational;
using NodeId = LiftedCircuit::NodeId;

// Hash-consing circuit builder: structurally identical nodes (same kind,
// payload, and child list) are emitted once, so the Shannon branches of a
// sentence with many zero-ary predicates share their common subcircuits
// the way the grounded trace shares cache hits.
class Builder {
 public:
  NodeId Const(const BigRational& value) {
    std::string text = value.ToString();
    auto [slot_it, inserted] =
        constant_slots_.emplace(text, static_cast<std::uint32_t>(constants_.size()));
    if (inserted) constants_.push_back(value);
    LiftedCircuit::Node node;
    node.kind = LiftedCircuit::Kind::kConst;
    node.index = slot_it->second;
    return Intern(node, {}, "K" + text);
  }

  NodeId Weight(std::uint32_t relation, bool positive) {
    LiftedCircuit::Node node;
    node.kind = LiftedCircuit::Kind::kWeight;
    node.index = relation;
    node.positive = positive;
    return Intern(node, {},
                  (positive ? "W+" : "W-") + std::to_string(relation));
  }

  NodeId And(std::vector<NodeId> children) {
    if (children.size() == 1) return children[0];
    LiftedCircuit::Node node;
    node.kind = LiftedCircuit::Kind::kAnd;
    return Intern(node, std::move(children), "A");
  }

  NodeId Or(std::vector<NodeId> children) {
    if (children.size() == 1) return children[0];
    LiftedCircuit::Node node;
    node.kind = LiftedCircuit::Kind::kOr;
    return Intern(node, std::move(children), "O");
  }

  NodeId Count(std::uint32_t cells, std::vector<NodeId> children) {
    LiftedCircuit::Node node;
    node.kind = LiftedCircuit::Kind::kCount;
    node.cells = cells;
    return Intern(node, std::move(children), "C" + std::to_string(cells));
  }

  LiftedCircuit Finish(std::vector<LiftedCircuit::Relation> relations,
                       NodeId root) {
    return LiftedCircuit(std::move(relations), std::move(constants_),
                         std::move(nodes_), std::move(edges_), root);
  }

 private:
  NodeId Intern(LiftedCircuit::Node node, std::vector<NodeId> children,
                std::string key) {
    for (NodeId child : children) {
      key += ',';
      key += std::to_string(child);
    }
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    node.children_begin = static_cast<std::uint32_t>(edges_.size());
    edges_.insert(edges_.end(), children.begin(), children.end());
    node.children_end = static_cast<std::uint32_t>(edges_.size());
    NodeId id = static_cast<NodeId>(nodes_.size());
    nodes_.push_back(node);
    cache_.emplace(std::move(key), id);
    return id;
  }

  std::vector<LiftedCircuit::Node> nodes_;
  std::vector<NodeId> edges_;
  std::vector<BigRational> constants_;
  std::unordered_map<std::string, NodeId> cache_;
  std::unordered_map<std::string, std::uint32_t> constant_slots_;
};

// The structural mirror of the cell algorithm's SolveMatrix: the same
// 1-type and off-diagonal enumeration (both weight-independent boolean
// checks), but cell weights become ANDs of weight leaves and the pair
// sums r_kl become ORs over the satisfying codes.
NodeId EmitMatrix(Builder* builder, const Formula& matrix,
                  const logic::Vocabulary& vocabulary,
                  LiftedCompileStats* stats) {
  std::vector<RelationId> unary_relations, binary_relations;
  for (RelationId id = 0; id < vocabulary.size(); ++id) {
    if (vocabulary.arity(id) == 1) unary_relations.push_back(id);
    if (vocabulary.arity(id) == 2) binary_relations.push_back(id);
  }
  std::size_t m = unary_relations.size();
  std::size_t b = binary_relations.size();
  if (m + b > 20) {
    throw std::invalid_argument("CompileLifted: too many predicates");
  }
  MatrixEvaluator evaluator(vocabulary, unary_relations, binary_relations);

  // Enumerate 1-types, keeping only those whose diagonal satisfies ψ(x,x)
  // — a weight-independent check, so the circuit's cell set is valid for
  // every weight vector.
  std::vector<Cell> cells;
  std::vector<NodeId> cell_weights;
  std::size_t total_cells = std::size_t{1} << (m + b);
  for (std::size_t code = 0; code < total_cells; ++code) {
    Cell cell;
    cell.unary.resize(m);
    cell.diagonal.resize(b);
    std::vector<NodeId> leaves;
    leaves.reserve(m + b);
    for (std::size_t i = 0; i < m; ++i) {
      cell.unary[i] = (code >> i) & 1;
      leaves.push_back(builder->Weight(
          static_cast<std::uint32_t>(unary_relations[i]), cell.unary[i]));
    }
    for (std::size_t i = 0; i < b; ++i) {
      cell.diagonal[i] = (code >> (m + i)) & 1;
      leaves.push_back(builder->Weight(
          static_cast<std::uint32_t>(binary_relations[i]), cell.diagonal[i]));
    }
    PairEnv env{&cell, &cell, nullptr, nullptr, /*same_element=*/true};
    if (evaluator.Eval(matrix, env)) {
      cells.push_back(std::move(cell));
      cell_weights.push_back(builder->And(std::move(leaves)));
    }
  }
  if (stats != nullptr) {
    stats->unary_predicates = m;
    stats->binary_predicates = b;
    stats->cells += total_cells;
    stats->valid_cells += cells.size();
  }
  std::size_t num_cells = cells.size();
  if (num_cells == 0) return builder->Const(BigRational(0));

  // Counting-node children: the C cell weights, then r_kl for k <= l in
  // row-major upper-triangular order — the layout LiftedCircuit::Evaluate
  // feeds into the composition sum.
  std::vector<NodeId> children = cell_weights;
  std::vector<bool> xy(b), yx(b);
  for (std::size_t k = 0; k < num_cells; ++k) {
    for (std::size_t l = k; l < num_cells; ++l) {
      std::vector<NodeId> satisfying;
      for (std::size_t code = 0; code < (std::size_t{1} << (2 * b)); ++code) {
        std::vector<NodeId> leaves;
        leaves.reserve(2 * b);
        for (std::size_t i = 0; i < b; ++i) {
          xy[i] = (code >> (2 * i)) & 1;
          yx[i] = (code >> (2 * i + 1)) & 1;
          leaves.push_back(builder->Weight(
              static_cast<std::uint32_t>(binary_relations[i]), xy[i]));
          leaves.push_back(builder->Weight(
              static_cast<std::uint32_t>(binary_relations[i]), yx[i]));
        }
        PairEnv forward{&cells[k], &cells[l], &xy, &yx, false};
        if (!evaluator.Eval(matrix, forward)) continue;
        // ψ(b,a): swap the roles of the two elements.
        PairEnv backward{&cells[l], &cells[k], &yx, &xy, false};
        if (!evaluator.Eval(matrix, backward)) continue;
        satisfying.push_back(builder->And(std::move(leaves)));
      }
      children.push_back(builder->Or(std::move(satisfying)));
    }
  }
  return builder->Count(static_cast<std::uint32_t>(num_cells),
                        std::move(children));
}

// Shannon expansion over the zero-ary predicates. Unlike the direct
// counter, which skips a branch whose compile-time weight is zero, both
// branches are always emitted: the weights live in the leaves and may be
// anything at evaluation time.
NodeId EmitShannon(Builder* builder, const Formula& matrix,
                   const logic::Vocabulary& vocabulary,
                   const std::vector<RelationId>& zeroary, std::size_t index,
                   LiftedCompileStats* stats) {
  if (index == zeroary.size()) {
    return EmitMatrix(builder, matrix, vocabulary, stats);
  }
  RelationId relation = zeroary[index];
  std::vector<NodeId> branches;
  for (bool value : {true, false}) {
    Formula substituted = SubstituteZeroAry(matrix, relation, value);
    NodeId tail = EmitShannon(builder, substituted, vocabulary, zeroary,
                              index + 1, stats);
    branches.push_back(builder->And(
        {builder->Weight(static_cast<std::uint32_t>(relation), value), tail}));
  }
  return builder->Or(std::move(branches));
}

}  // namespace

bool CanCompileLifted(const logic::Formula& sentence,
                      const logic::Vocabulary& vocabulary) {
  if (!logic::IsSentence(sentence)) return false;
  if (!logic::InFragmentFOk(sentence, 2)) return false;
  if (vocabulary.MaxArity() > 2) return false;
  std::function<bool(const Formula&)> has_constant = [&](const Formula& f) {
    for (const logic::Term& t : f->arguments()) {
      if (t.IsConstant()) return true;
    }
    for (const Formula& child : f->children()) {
      if (has_constant(child)) return true;
    }
    return false;
  };
  return !has_constant(sentence);
}

nnf::LiftedCircuit CompileLifted(const logic::Formula& sentence,
                                 const logic::Vocabulary& vocabulary,
                                 LiftedCompileStats* stats) {
  UniversalForm form = ToUniversalForm(sentence, vocabulary);
  std::vector<RelationId> zeroary;
  for (RelationId id = 0; id < form.vocabulary.size(); ++id) {
    if (form.vocabulary.arity(id) == 0) zeroary.push_back(id);
  }
  if (stats != nullptr) stats->zeroary_predicates = zeroary.size();
  Builder builder;
  NodeId root =
      EmitShannon(&builder, form.matrix, form.vocabulary, zeroary, 0, stats);
  std::vector<LiftedCircuit::Relation> relations;
  relations.reserve(form.vocabulary.size());
  for (RelationId id = 0; id < form.vocabulary.size(); ++id) {
    relations.push_back(LiftedCircuit::Relation{
        form.vocabulary.name(id), form.vocabulary.positive_weight(id),
        form.vocabulary.negative_weight(id)});
  }
  return builder.Finish(std::move(relations), root);
}

}  // namespace swfomc::fo2
