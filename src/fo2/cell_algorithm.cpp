#include "fo2/cell_algorithm.h"

#include "logic/evaluate.h"
#include "logic/structure.h"

#include <stdexcept>
#include <unordered_map>

#include "fo2/matrix_eval.h"
#include "numeric/combinatorics.h"

namespace swfomc::fo2 {

namespace {

using logic::Formula;
using logic::FormulaKind;
using logic::RelationId;
using numeric::BigRational;

// Core: Shannon-expanded, zero-ary-free matrix. `binomials` is shared
// across the Shannon branches so Pascal rows are built once per solve
// rather than once per composition term.
BigRational SolveMatrix(const Formula& matrix,
                        const logic::Vocabulary& vocabulary,
                        std::uint64_t n, numeric::BinomialTable* binomials,
                        CellStats* stats) {
  std::vector<RelationId> unary_relations, binary_relations;
  for (RelationId id = 0; id < vocabulary.size(); ++id) {
    if (vocabulary.arity(id) == 1) unary_relations.push_back(id);
    if (vocabulary.arity(id) == 2) binary_relations.push_back(id);
  }
  std::size_t m = unary_relations.size();
  std::size_t b = binary_relations.size();
  if (m + b > 20) {
    throw std::invalid_argument("CellAlgorithmWFOMC: too many predicates");
  }
  MatrixEvaluator evaluator(vocabulary, unary_relations, binary_relations);

  // Enumerate 1-types, keeping only those whose diagonal satisfies ψ(x,x).
  std::vector<Cell> cells;
  std::size_t total_cells = std::size_t{1} << (m + b);
  for (std::size_t code = 0; code < total_cells; ++code) {
    Cell cell;
    cell.unary.resize(m);
    cell.diagonal.resize(b);
    cell.weight = BigRational(1);
    for (std::size_t i = 0; i < m; ++i) {
      cell.unary[i] = (code >> i) & 1;
      cell.weight *= cell.unary[i]
                         ? vocabulary.positive_weight(unary_relations[i])
                         : vocabulary.negative_weight(unary_relations[i]);
    }
    for (std::size_t i = 0; i < b; ++i) {
      cell.diagonal[i] = (code >> (m + i)) & 1;
      cell.weight *= cell.diagonal[i]
                         ? vocabulary.positive_weight(binary_relations[i])
                         : vocabulary.negative_weight(binary_relations[i]);
    }
    PairEnv env{&cell, &cell, nullptr, nullptr, /*same_element=*/true};
    if (evaluator.Eval(matrix, env)) {
      cells.push_back(std::move(cell));
    }
  }
  if (stats != nullptr) {
    stats->unary_predicates = m;
    stats->binary_predicates = b;
    // Accumulated across Shannon-expansion branches (one SolveMatrix call
    // per assignment of the zero-ary predicates), like composition_terms.
    stats->cells += total_cells;
    stats->valid_cells += cells.size();
  }
  std::size_t num_cells = cells.size();
  if (num_cells == 0) return BigRational(0);

  // Pairwise tables r_kl: weighted count of off-diagonal assignments with
  // ψ(a,b) ∧ ψ(b,a), a in cell k, b in cell l.
  std::vector<std::vector<BigRational>> r(num_cells,
                                          std::vector<BigRational>(num_cells));
  std::size_t off_diag_bits = 2 * b;
  std::vector<bool> xy(b), yx(b);
  for (std::size_t k = 0; k < num_cells; ++k) {
    for (std::size_t l = k; l < num_cells; ++l) {
      BigRational sum;
      for (std::size_t code = 0; code < (std::size_t{1} << off_diag_bits);
           ++code) {
        BigRational weight(1);
        for (std::size_t i = 0; i < b; ++i) {
          xy[i] = (code >> (2 * i)) & 1;
          yx[i] = (code >> (2 * i + 1)) & 1;
          weight *= xy[i] ? vocabulary.positive_weight(binary_relations[i])
                          : vocabulary.negative_weight(binary_relations[i]);
          weight *= yx[i] ? vocabulary.positive_weight(binary_relations[i])
                          : vocabulary.negative_weight(binary_relations[i]);
        }
        PairEnv forward{&cells[k], &cells[l], &xy, &yx, false};
        if (!evaluator.Eval(matrix, forward)) continue;
        // ψ(b,a): swap the roles of the two elements.
        PairEnv backward{&cells[l], &cells[k], &yx, &xy, false};
        if (!evaluator.Eval(matrix, backward)) continue;
        sum += weight;
      }
      r[k][l] = sum;
      r[l][k] = std::move(sum);
    }
  }

  // Sum over compositions n_1 + ... + n_C = n.
  BigRational total;
  std::uint64_t terms = 0;
  numeric::ForEachComposition(
      n, num_cells, [&](const std::vector<std::uint64_t>& counts) -> bool {
        ++terms;
        BigRational term(binomials->Multinomial(n, counts));
        for (std::size_t l = 0; l < num_cells && !term.IsZero(); ++l) {
          if (counts[l] == 0) continue;
          term *= BigRational::Pow(cells[l].weight,
                                   static_cast<std::int64_t>(counts[l]));
          if (counts[l] >= 2) {
            term *= BigRational::Pow(
                r[l][l],
                static_cast<std::int64_t>(counts[l] * (counts[l] - 1) / 2));
          }
          for (std::size_t k = 0; k < l; ++k) {
            if (counts[k] == 0) continue;
            term *= BigRational::Pow(
                r[k][l], static_cast<std::int64_t>(counts[k] * counts[l]));
          }
        }
        total += term;
        return true;
      });
  if (stats != nullptr) stats->composition_terms += terms;
  return total;
}

BigRational SolveWithShannon(Formula matrix,
                             const logic::Vocabulary& vocabulary,
                             const std::vector<RelationId>& zeroary,
                             std::size_t index, std::uint64_t n,
                             numeric::BinomialTable* binomials,
                             CellStats* stats) {
  if (index == zeroary.size()) {
    return SolveMatrix(matrix, vocabulary, n, binomials, stats);
  }
  RelationId relation = zeroary[index];
  BigRational result;
  for (bool value : {true, false}) {
    const BigRational& weight = value ? vocabulary.positive_weight(relation)
                                      : vocabulary.negative_weight(relation);
    if (weight.IsZero()) continue;
    Formula substituted = SubstituteZeroAry(matrix, relation, value);
    result += weight * SolveWithShannon(std::move(substituted), vocabulary,
                                        zeroary, index + 1, n, binomials,
                                        stats);
  }
  return result;
}

}  // namespace

numeric::BigRational CellAlgorithmWFOMC(const UniversalForm& form,
                                        std::uint64_t domain_size,
                                        CellStats* stats) {
  numeric::BinomialTable binomials;
  return CellAlgorithmWFOMC(form, domain_size, &binomials, stats);
}

numeric::BigRational CellAlgorithmWFOMC(const UniversalForm& form,
                                        std::uint64_t domain_size,
                                        numeric::BinomialTable* binomials,
                                        CellStats* stats) {
  if (domain_size == 0) {
    // Over the empty domain the lineage of ∀x∀y ψ is `true`, so the count
    // is the sum over the 0-ary predicates' assignments = Π_0-ary (w + w̄).
    // NOTE: this is the WFOMC of the universal form itself; the normal-form
    // construction only preserves the original sentence's WFOMC for n >= 1
    // (quantifier pulling assumes a non-empty domain), which is why
    // LiftedWFOMC routes n = 0 elsewhere.
    BigRational result(1);
    for (RelationId id = 0; id < form.vocabulary.size(); ++id) {
      if (form.vocabulary.arity(id) == 0) {
        result *= form.vocabulary.positive_weight(id) +
                  form.vocabulary.negative_weight(id);
      }
    }
    return result;
  }
  std::vector<RelationId> zeroary;
  for (RelationId id = 0; id < form.vocabulary.size(); ++id) {
    if (form.vocabulary.arity(id) == 0) zeroary.push_back(id);
  }
  if (stats != nullptr) stats->zeroary_predicates = zeroary.size();
  return SolveWithShannon(form.matrix, form.vocabulary, zeroary, 0,
                          domain_size, binomials, stats);
}

numeric::BigRational LiftedWFOMC(const logic::Formula& sentence,
                                 const logic::Vocabulary& vocabulary,
                                 std::uint64_t domain_size,
                                 CellStats* stats) {
  if (domain_size == 0) {
    // The normal form preserves WFOMC only for non-empty domains; n = 0
    // has a single world (assignments to 0-ary predicates only) and is
    // evaluated directly.
    logic::Structure empty(vocabulary, 0);
    BigRational result;
    std::uint64_t zeroary = empty.TupleCount();
    for (std::uint64_t mask = 0; mask < (1ULL << zeroary); ++mask) {
      empty.AssignFromMask(mask);
      if (logic::Evaluate(empty, sentence)) result += empty.Weight();
    }
    return result;
  }
  UniversalForm form = ToUniversalForm(sentence, vocabulary);
  return CellAlgorithmWFOMC(form, domain_size, stats);
}

numeric::BigInt LiftedFOMC(const logic::Formula& sentence,
                           const logic::Vocabulary& vocabulary,
                           std::uint64_t domain_size) {
  logic::Vocabulary unweighted = vocabulary;
  for (RelationId id = 0; id < unweighted.size(); ++id) {
    unweighted.SetWeights(id, 1, 1);
  }
  return LiftedWFOMC(sentence, unweighted, domain_size).ToInteger();
}

numeric::BigRational LiftedProbability(const logic::Formula& sentence,
                                       const logic::Vocabulary& vocabulary,
                                       std::uint64_t domain_size) {
  BigRational numerator = LiftedWFOMC(sentence, vocabulary, domain_size);
  BigRational normalizer(1);
  for (RelationId id = 0; id < vocabulary.size(); ++id) {
    std::uint64_t tuples = 1;
    for (std::size_t i = 0; i < vocabulary.arity(id); ++i) {
      tuples *= domain_size;
    }
    normalizer *= BigRational::Pow(
        vocabulary.positive_weight(id) + vocabulary.negative_weight(id),
        static_cast<std::int64_t>(tuples));
  }
  if (normalizer.IsZero()) {
    throw std::domain_error("LiftedProbability: zero normalizer");
  }
  return numerator / normalizer;
}

}  // namespace swfomc::fo2
