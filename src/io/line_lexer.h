#ifndef SWFOMC_IO_LINE_LEXER_H_
#define SWFOMC_IO_LINE_LEXER_H_

// Shared token-level machinery for the io module's line-oriented readers
// (model_format.cpp, cnf_format.cpp): whitespace tokenization with column
// tracking, and the numeric token parsers with their overflow checks.
// Internal to src/io — not part of the module's public surface.

#include <cctype>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "io/diagnostics.h"
#include "numeric/rational.h"

namespace swfomc::io::internal {

/// Calls fn(line_number, line) for every line of `text` (1-based, final
/// newline-less line included). A trailing '\n' terminates the last line
/// rather than opening a phantom empty one — "a\n" is one line, "a\n\n"
/// is two — so EOF diagnostics keyed to the last delivered line point at
/// the last real line. Windows '\r' is stripped. Both readers get their
/// line accounting from here so their diagnostics can never drift.
template <typename LineFn>
inline void ForEachLine(std::string_view text, LineFn&& fn) {
  std::size_t pos = 0;
  std::size_t number = 1;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    fn(number, line);
    if (eol == std::string_view::npos) break;
    pos = eol + 1;
    ++number;
  }
}

/// One whitespace-delimited token plus the 1-based column it starts at.
struct LineToken {
  std::string text;
  std::size_t column = 1;
};

inline std::vector<LineToken> Tokenize(std::string_view line) {
  std::vector<LineToken> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    if (std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
      continue;
    }
    std::size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    tokens.push_back(
        LineToken{std::string(line.substr(start, i - start)), start + 1});
  }
  return tokens;
}

[[noreturn]] inline void FailAt(std::string_view source, Location location,
                                const std::string& message) {
  throw ParseError(std::string(source), location, message);
}

/// Parses `text` (usually token.text, but domain ranges parse substrings)
/// as a non-negative integer; errors point at the token's position.
inline std::uint64_t ParseUnsignedText(std::string_view source,
                                       std::size_t line,
                                       const LineToken& token,
                                       const std::string& text,
                                       const char* what) {
  Location at{line, token.column};
  if (text.empty()) FailAt(source, at, std::string("missing ") + what);
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t value = 0;
  for (char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      FailAt(source, at,
             std::string("bad ") + what + " '" + text +
                 "' (expected a non-negative integer)");
    }
    std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    // Checked before the multiply: the *10 itself can wrap past a
    // post-hoc "smaller than before" test.
    if (value > (kMax - digit) / 10) {
      FailAt(source, at, std::string(what) + " '" + text + "' overflows");
    }
    value = value * 10 + digit;
  }
  return value;
}

inline std::uint64_t ParseUnsigned(std::string_view source, std::size_t line,
                                   const LineToken& token, const char* what) {
  return ParseUnsignedText(source, line, token, token.text, what);
}

inline std::int64_t ParseSigned(std::string_view source, std::size_t line,
                                const LineToken& token, const char* what) {
  Location at{line, token.column};
  std::string_view text = token.text;
  bool negative = false;
  if (!text.empty() && text[0] == '-') {
    negative = true;
    text.remove_prefix(1);
  }
  if (text.empty()) {
    FailAt(source, at,
           std::string("bad ") + what + " '" + token.text + "'");
  }
  std::int64_t value = 0;
  for (char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      FailAt(source, at,
             std::string("bad ") + what + " '" + token.text +
                 "' (expected an integer)");
    }
    if (value > (std::int64_t{1} << 32)) {
      FailAt(source, at,
             std::string(what) + " '" + token.text + "' overflows");
    }
    value = value * 10 + (c - '0');
  }
  return negative ? -value : value;
}

inline numeric::BigRational ParseRational(std::string_view source,
                                          std::size_t line,
                                          const LineToken& token) {
  try {
    return numeric::BigRational::FromString(token.text);
  } catch (const std::invalid_argument&) {
    FailAt(source, {line, token.column},
           "bad rational '" + token.text +
               "' (expected \"a\", \"-a\", or \"a/b\")");
  }
}

}  // namespace swfomc::io::internal

#endif  // SWFOMC_IO_LINE_LEXER_H_
