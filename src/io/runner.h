#ifndef SWFOMC_IO_RUNNER_H_
#define SWFOMC_IO_RUNNER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "api/engine.h"
#include "io/cnf_format.h"
#include "io/json.h"
#include "io/model_format.h"
#include "io/nnf_format.h"
#include "nnf/circuit.h"
#include "nnf/lifted_circuit.h"
#include "numeric/rational.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/budget.h"
#include "wmc/dpll_counter.h"

namespace swfomc::io {

/// Execution knobs shared by every CLI subcommand.
struct RunOptions {
  /// Engine::Options::num_threads (1 = sequential, 0 = hardware).
  unsigned num_threads = 1;
  /// Overrides the model's `method` directive when set (the CLI's
  /// --method flag).
  std::optional<api::Method> method_override;
  /// Resource envelope (the CLI's --budget-ms / --max-decisions /
  /// --max-memory flags). When any is set, a fresh runtime::Budget is
  /// armed per input — the deadline clock starts when that input's
  /// evaluation starts, not at process launch — and a grounded search
  /// that exhausts it reports outcome "bounds" (or "aborted") instead of
  /// running away.
  std::optional<std::uint64_t> budget_ms;
  std::optional<std::uint64_t> max_decisions;
  std::optional<std::uint64_t> max_memory_bytes;
  /// Live observability (the CLI's --metrics-out / --trace-out flags;
  /// not owned, null = disabled). Forwarded into the engine and the DPLL
  /// counter; never changes any result bit.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceLog* trace = nullptr;

  bool governed() const {
    return budget_ms.has_value() || max_decisions.has_value() ||
           max_memory_bytes.has_value();
  }
};

/// Everything one model evaluation produced, ready for serialization:
/// the counts (one point per domain size), the routing decision and its
/// reason, counter statistics where the grounded engine ran, wall-clock
/// time, and the outcome of the `expect` check.
struct ModelRunReport {
  std::string source;    // file path (or "<input>")
  std::string name;      // the model directive, may be empty
  std::string sentence;  // canonical rendering
  /// What Auto routing would pick and why — always reported, even when a
  /// method was forced, so logs show when a run overrode the router.
  api::RouteDecision route;
  /// The method that actually computed the counts.
  api::Method method_used = api::Method::kGrounded;
  std::uint64_t domain_lo = 0;
  std::uint64_t domain_hi = 0;
  std::vector<api::Engine::SweepPoint> points;  // ascending, >= 1 entry
  /// Worst outcome across the points (kAborted > kBounds > kExact) and
  /// the first stop reason, for governed runs; kExact/kNone otherwise.
  api::Outcome outcome = api::Outcome::kExact;
  runtime::StopReason stop_reason = runtime::StopReason::kNone;
  /// DPLL counter statistics; present for single-point grounded runs
  /// (sweeps share no single counter, so they report none).
  std::optional<wmc::DpllCounter::Stats> grounded_stats;
  double elapsed_seconds = 0.0;
  std::optional<numeric::BigRational> expected;  // the plain `expect`
  /// The `expect N = VALUE` directives, ascending in N.
  std::vector<std::pair<std::uint64_t, numeric::BigRational>> point_expects;
  /// Every point with an applicable expectation must pass — a matching
  /// `expect N = VALUE`, or the plain `expect` at the largest domain
  /// size. Exact points must equal the expectation, bounds points must
  /// bracket it (lower <= expect <= upper), aborted points fail. A
  /// mid-sweep mismatch fails the whole check, not just the last point.
  bool check_passed = true;
  /// Domain size of the first point that failed its check, when any did.
  std::optional<std::uint64_t> first_failed_point;
};

/// Evaluates a parsed model through api::Engine (WFOMC for a point,
/// WFOMCSweep for a range) and assembles the report. Throws
/// std::invalid_argument when the model has no `domain` directive — a
/// domain-less model is a compile-only workload.
ModelRunReport RunModel(const ModelSpec& spec, const RunOptions& options = {},
                        std::string source = "<input>");

/// One weighted CNF count through wmc::DpllCounter.
struct CnfRunReport {
  std::string source;
  std::uint32_t variables = 0;
  std::uint64_t clauses = 0;
  /// The exact count, or the certified lower bound when `outcome` is
  /// kBounds (see `upper`).
  numeric::BigRational count;
  numeric::BigRational upper;  // == count unless outcome is kBounds
  api::Outcome outcome = api::Outcome::kExact;
  runtime::StopReason stop_reason = runtime::StopReason::kNone;
  wmc::DpllCounter::Stats stats;
  double elapsed_seconds = 0.0;
};

CnfRunReport RunWeightedCnf(const WeightedCnf& instance,
                            const RunOptions& options = {},
                            std::string source = "<input>");

/// One model compiled into a circuit (`swfomc compile`): the report plus
/// the CompiledQuery itself, so callers can serialize the circuit or keep
/// serving weight vectors from it. Routing follows the unified
/// Engine::Compile: liftable FO² sentences (under method auto or
/// lifted-fo2) compile into a domain-parametric lifted circuit — no
/// `domain` directive needed — and everything else runs the (sequential)
/// grounded trace at the model's largest domain size.
struct CompileRunReport {
  std::string source;
  std::string name;
  std::string sentence;
  api::RouteDecision route;  // what Auto *would* run, for the record
  /// Which circuit kind came out (meaningful when outcome is kExact).
  api::CompiledQuery::Kind kind = api::CompiledQuery::Kind::kGrounded;
  /// False for a domain-less (lifted-only) model; domain_size is then 0
  /// and `count` is not computed.
  bool has_domain = false;
  std::uint64_t domain_size = 0;
  std::uint32_t variables = 0;  // grounded: ground tuples + Tseitin aux
  /// The count at `domain_size` under the model's weights (grounded: the
  /// compile-time count; lifted: one Evaluate(domain_size) pass). Unset
  /// when the model has no domain.
  numeric::BigRational count;
  /// kAborted when the budget stopped the grounded trace (the partial
  /// circuit is discarded — compilation has no bounds mode); kExact
  /// otherwise. The lifted compiler is polynomial and never aborts.
  api::Outcome outcome = api::Outcome::kExact;
  runtime::StopReason stop_reason = runtime::StopReason::kNone;
  wmc::DpllCounter::Stats search_stats;          // grounded kind
  nnf::Circuit::Stats circuit_stats;             // grounded kind
  fo2::LiftedCompileStats lifted_stats;          // lifted kind
  nnf::LiftedCircuit::Stats lifted_circuit_stats;  // lifted kind
  double compile_seconds = 0.0;
  /// Where the `.nnf` was written ("" when not requested).
  std::string output_path;
  std::optional<numeric::BigRational> expected;  // the `expect` directive
  bool check_passed = true;
};

struct CompileOutcome {
  CompileRunReport report;
  /// Set exactly when report.outcome is kExact.
  std::optional<api::CompiledQuery> query;
};

CompileOutcome RunCompile(const ModelSpec& spec,
                          const RunOptions& options = {},
                          std::string source = "<input>");

/// The serialized form of a compiled model: the circuit, the weight map
/// the model's vocabulary induces, and the model's `expect` as the `e`
/// line so `swfomc eval --check` can verify the pipeline end to end.
NnfDocument MakeNnfDocument(const api::CompiledQuery& query,
                            std::optional<numeric::BigRational> expect);

/// The serialized form of a lifted compile: the domain-parametric circuit
/// with its relation table, plus one pinned (domain size, value) pair —
/// typically (domain_hi, count) from the compile report — as the `e`
/// line, which doubles as `swfomc eval`'s default domain size.
LiftedNnfDocument MakeLiftedNnfDocument(
    const api::CompiledQuery& query,
    std::optional<std::pair<std::uint64_t, numeric::BigRational>> expect);

/// One circuit evaluation (`swfomc eval`), either dialect. Grounded:
/// d-DNNF well-formedness audit (std::runtime_error on violation — a
/// malformed circuit is an input error), then a linear evaluation under
/// the document's weights. Lifted: Evaluate(n) under the stored relation
/// weights, where n comes from the --domain flag or defaults to the `e`
/// line's domain size.
struct EvalRunReport {
  std::string source;
  api::CompiledQuery::Kind kind = api::CompiledQuery::Kind::kGrounded;
  std::uint32_t variables = 0;        // grounded kind
  nnf::Circuit::Stats circuit_stats;  // grounded kind
  nnf::LiftedCircuit::Stats lifted_circuit_stats;  // lifted kind
  std::uint64_t domain_size = 0;      // lifted kind: the n evaluated at
  numeric::BigRational value;
  double elapsed_seconds = 0.0;
  std::optional<numeric::BigRational> expected;  // the `e` line
  bool check_passed = true;
};

EvalRunReport RunEval(const NnfDocument& document,
                      std::string source = "<input>");

/// Lifted-dialect evaluation. `domain_size` overrides the `e` line's
/// default; throws std::runtime_error when neither supplies an n. The
/// `e` line's value is checked only when evaluating at its own domain
/// size (a different --domain computes a different point).
EvalRunReport RunEval(const LiftedNnfDocument& document,
                      std::optional<std::uint64_t> domain_size = std::nullopt,
                      std::string source = "<input>");

/// JSON renderings of the reports (the `swfomc` output schema; see the
/// README's "File formats and the swfomc CLI" section). All exact values
/// are strings; timings are numbers.
JsonValue ToJson(const ModelRunReport& report);
JsonValue ToJson(const CnfRunReport& report);
JsonValue ToJson(const CompileRunReport& report);
JsonValue ToJson(const EvalRunReport& report);
JsonValue ToJson(const wmc::DpllCounter::Stats& stats);
JsonValue ToJson(const nnf::Circuit::Stats& stats);
JsonValue ToJson(const nnf::LiftedCircuit::Stats& stats);
JsonValue ToJson(const fo2::LiftedCompileStats& stats);

}  // namespace swfomc::io

#endif  // SWFOMC_IO_RUNNER_H_
