#ifndef SWFOMC_IO_RUNNER_H_
#define SWFOMC_IO_RUNNER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "api/engine.h"
#include "io/cnf_format.h"
#include "io/json.h"
#include "io/model_format.h"
#include "numeric/rational.h"
#include "wmc/dpll_counter.h"

namespace swfomc::io {

/// Execution knobs shared by every CLI subcommand.
struct RunOptions {
  /// Engine::Options::num_threads (1 = sequential, 0 = hardware).
  unsigned num_threads = 1;
  /// Overrides the model's `method` directive when set (the CLI's
  /// --method flag).
  std::optional<api::Method> method_override;
};

/// Everything one model evaluation produced, ready for serialization:
/// the counts (one point per domain size), the routing decision and its
/// reason, counter statistics where the grounded engine ran, wall-clock
/// time, and the outcome of the `expect` check.
struct ModelRunReport {
  std::string source;    // file path (or "<input>")
  std::string name;      // the model directive, may be empty
  std::string sentence;  // canonical rendering
  /// What Auto routing would pick and why — always reported, even when a
  /// method was forced, so logs show when a run overrode the router.
  api::RouteDecision route;
  /// The method that actually computed the counts.
  api::Method method_used = api::Method::kGrounded;
  std::uint64_t domain_lo = 0;
  std::uint64_t domain_hi = 0;
  std::vector<api::Engine::SweepPoint> points;  // ascending, >= 1 entry
  /// DPLL counter statistics; present for single-point grounded runs
  /// (sweeps share no single counter, so they report none).
  std::optional<wmc::DpllCounter::Stats> grounded_stats;
  double elapsed_seconds = 0.0;
  std::optional<numeric::BigRational> expected;  // the `expect` directive
  /// False iff `expected` is present and the count at domain_hi differs.
  bool check_passed = true;
};

/// Evaluates a parsed model through api::Engine (WFOMC for a point,
/// WFOMCSweep for a range) and assembles the report.
ModelRunReport RunModel(const ModelSpec& spec, const RunOptions& options = {},
                        std::string source = "<input>");

/// One weighted CNF count through wmc::DpllCounter.
struct CnfRunReport {
  std::string source;
  std::uint32_t variables = 0;
  std::uint64_t clauses = 0;
  numeric::BigRational count;
  wmc::DpllCounter::Stats stats;
  double elapsed_seconds = 0.0;
};

CnfRunReport RunWeightedCnf(const WeightedCnf& instance,
                            const RunOptions& options = {},
                            std::string source = "<input>");

/// JSON renderings of the reports (the `swfomc` output schema; see the
/// README's "File formats and the swfomc CLI" section). All exact values
/// are strings; timings are numbers.
JsonValue ToJson(const ModelRunReport& report);
JsonValue ToJson(const CnfRunReport& report);
JsonValue ToJson(const wmc::DpllCounter::Stats& stats);

}  // namespace swfomc::io

#endif  // SWFOMC_IO_RUNNER_H_
