#include "io/model_format.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <set>
#include <sstream>
#include <vector>

#include "io/line_lexer.h"
#include "logic/parser.h"
#include "logic/printer.h"

namespace swfomc::io {

namespace {

using numeric::BigRational;
using internal::LineToken;
using internal::Tokenize;

class ModelParser {
 public:
  ModelParser(std::string_view text, std::string_view source)
      : text_(text), source_(source) {}

  ModelSpec Parse() {
    internal::ForEachLine(text_, [&](std::size_t number,
                                     std::string_view line) {
      line_ = number;
      ParseLine(line);
    });
    if (!saw_sentence_) {
      Fail({line_, 1}, "missing required directive 'sentence'");
    }
    if (!saw_domain_ &&
        (spec_.expect.has_value() || !point_expects_.empty())) {
      Fail({line_, 1},
           "directive 'expect' needs a 'domain' directive (there is no "
           "domain size to expect a value at)");
    }
    ValidatePointExpects();
    return std::move(spec_);
  }

 private:
  [[noreturn]] void Fail(Location location, const std::string& message) const {
    throw ParseError(std::string(source_), location, message);
  }

  Location At(const LineToken& token) const { return {line_, token.column}; }

  void ParseLine(std::string_view line) {
    // Comments run from '#' to end of line ('#' cannot occur inside any
    // directive operand, the FO syntax included).
    std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);

    std::vector<LineToken> tokens = Tokenize(line);
    if (tokens.empty()) return;
    const std::string& directive = tokens[0].text;

    if (directive == "model") {
      RequireOperands(tokens, 1, "model NAME");
      RequireFirst(!saw_name_, tokens[0], "duplicate 'model' directive");
      saw_name_ = true;
      spec_.name = tokens[1].text;
    } else if (directive == "predicate") {
      ParsePredicate(tokens);
    } else if (directive == "sentence") {
      ParseSentence(line, tokens);
    } else if (directive == "weight") {
      ParseWeight(tokens);
    } else if (directive == "domain") {
      ParseDomain(tokens);
    } else if (directive == "method") {
      RequireOperands(tokens, 1, "method NAME");
      RequireFirst(!saw_method_, tokens[0], "duplicate 'method' directive");
      saw_method_ = true;
      auto method = ParseMethodName(tokens[1].text);
      if (!method.has_value()) {
        Fail(At(tokens[1]),
             "unknown method '" + tokens[1].text +
                 "' (expected auto, lifted-fo2, gamma-acyclic, or grounded)");
      }
      spec_.method = *method;
    } else if (directive == "expect") {
      ParseExpect(tokens);
    } else {
      Fail(At(tokens[0]), "unknown directive '" + directive + "'");
    }
  }

  void RequireOperands(const std::vector<LineToken>& tokens, std::size_t count,
                       const char* usage) {
    if (tokens.size() != count + 1) {
      Fail(At(tokens[0]), "directive '" + tokens[0].text + "' takes " +
                              std::to_string(count) +
                              (count == 1 ? " operand" : " operands") +
                              ": " + usage);
    }
  }

  void RequireFirst(bool first, const LineToken& token,
                    const std::string& message) {
    if (!first) Fail(At(token), message);
  }

  void ParsePredicate(const std::vector<LineToken>& tokens) {
    RequireOperands(tokens, 2, "predicate NAME ARITY");
    if (saw_sentence_) {
      Fail(At(tokens[0]),
           "predicate declarations must precede the sentence");
    }
    const std::string& name = tokens[1].text;
    if (name.empty() ||
        !std::isupper(static_cast<unsigned char>(name[0]))) {
      Fail(At(tokens[1]),
           "predicate name must start with an uppercase letter (got '" +
               name + "')");
    }
    if (spec_.vocabulary.Find(name).has_value()) {
      Fail(At(tokens[1]), "duplicate predicate declaration '" + name + "'");
    }
    spec_.vocabulary.AddRelation(name, ParseUnsigned(tokens[2], "arity"));
  }

  void ParseSentence(std::string_view line,
                     const std::vector<LineToken>& tokens) {
    if (tokens.size() < 2) {
      Fail(At(tokens[0]), "directive 'sentence' needs an FO sentence");
    }
    RequireFirst(!saw_sentence_, tokens[0], "duplicate 'sentence' directive");
    saw_sentence_ = true;
    // Everything after the directive word is the sentence.
    std::size_t start = tokens[1].column - 1;
    std::string_view body = line.substr(start);
    while (!body.empty() &&
           std::isspace(static_cast<unsigned char>(body.back()))) {
      body.remove_suffix(1);
    }
    try {
      spec_.sentence = logic::Parse(body, &spec_.vocabulary);
    } catch (const logic::SyntaxError& error) {
      // Map the parser's byte offset into this line's columns.
      Fail({line_, start + error.offset() + 1}, error.what());
    } catch (const std::invalid_argument& error) {
      Fail(At(tokens[1]), error.what());
    }
    spec_.sentence_text = std::string(body);
  }

  void ParseWeight(const std::vector<LineToken>& tokens) {
    RequireOperands(tokens, 3, "weight NAME W WBAR");
    const std::string& name = tokens[1].text;
    auto id = spec_.vocabulary.Find(name);
    if (!id.has_value()) {
      Fail(At(tokens[1]),
           "unknown predicate '" + name +
               "' (declare it or use it in the sentence first)");
    }
    if (!weighted_.insert(*id).second) {
      Fail(At(tokens[1]), "duplicate weight for predicate '" + name + "'");
    }
    BigRational positive = ParseRational(tokens[2]);
    BigRational negative = ParseRational(tokens[3]);
    spec_.vocabulary.SetWeights(*id, std::move(positive), std::move(negative));
  }

  void ParseExpect(const std::vector<LineToken>& tokens) {
    // Two spellings: `expect VALUE` (the largest domain size) and
    // `expect N = VALUE` (one sweep point). Point expects are validated
    // against the domain range after the whole file is parsed — directive
    // order is free, so the range may not be known yet.
    if (tokens.size() == 2) {
      RequireFirst(!spec_.expect.has_value(), tokens[0],
                   "duplicate 'expect' directive");
      spec_.expect = ParseRational(tokens[1]);
      return;
    }
    if (tokens.size() == 4 && tokens[2].text == "=") {
      PointExpect point;
      point.domain_size = ParseUnsigned(tokens[1], "domain size");
      point.value = ParseRational(tokens[3]);
      point.location = At(tokens[1]);
      point_expects_.push_back(std::move(point));
      return;
    }
    Fail(At(tokens[0]),
         "directive 'expect' takes either one operand (expect VALUE) or "
         "a sweep point (expect N = VALUE)");
  }

  void ValidatePointExpects() {
    std::set<std::uint64_t> seen;
    for (PointExpect& point : point_expects_) {
      if (point.domain_size < spec_.domain_lo ||
          point.domain_size > spec_.domain_hi) {
        Fail(point.location,
             "expect at domain size " + std::to_string(point.domain_size) +
                 " is outside the domain range " +
                 std::to_string(spec_.domain_lo) + ".." +
                 std::to_string(spec_.domain_hi));
      }
      if (!seen.insert(point.domain_size).second) {
        Fail(point.location,
             "duplicate 'expect' for domain size " +
                 std::to_string(point.domain_size));
      }
      if (spec_.expect.has_value() &&
          point.domain_size == spec_.domain_hi) {
        Fail(point.location,
             "'expect " + std::to_string(point.domain_size) +
                 " = ...' conflicts with the plain 'expect' directive, "
                 "which already covers the largest domain size");
      }
    }
    std::sort(point_expects_.begin(), point_expects_.end(),
              [](const PointExpect& a, const PointExpect& b) {
                return a.domain_size < b.domain_size;
              });
    spec_.point_expects.reserve(point_expects_.size());
    for (PointExpect& point : point_expects_) {
      spec_.point_expects.emplace_back(point.domain_size,
                                       std::move(point.value));
    }
  }

  void ParseDomain(const std::vector<LineToken>& tokens) {
    RequireOperands(tokens, 1, "domain N or domain LO..HI");
    RequireFirst(!saw_domain_, tokens[0], "duplicate 'domain' directive");
    saw_domain_ = true;
    spec_.has_domain = true;
    const std::string& text = tokens[1].text;
    std::size_t dots = text.find("..");
    if (dots == std::string::npos) {
      spec_.domain_lo = spec_.domain_hi =
          ParseUnsignedText(tokens[1], text, "domain size");
      return;
    }
    spec_.domain_lo =
        ParseUnsignedText(tokens[1], text.substr(0, dots), "domain size");
    spec_.domain_hi =
        ParseUnsignedText(tokens[1], text.substr(dots + 2), "domain size");
    if (spec_.domain_lo > spec_.domain_hi) {
      Fail(At(tokens[1]), "empty domain range '" + text + "' (LO > HI)");
    }
    // Each sweep point is a full WFOMC evaluation; a range this wide can
    // only be a typo (and an unguarded width would overflow downstream
    // point counting).
    if (spec_.domain_hi - spec_.domain_lo >= (std::uint64_t{1} << 20)) {
      Fail(At(tokens[1]),
           "domain range '" + text + "' is too wide (max 2^20 points)");
    }
  }

  std::uint64_t ParseUnsigned(const LineToken& token, const char* what) {
    return internal::ParseUnsigned(source_, line_, token, what);
  }

  std::uint64_t ParseUnsignedText(const LineToken& token,
                                  const std::string& text, const char* what) {
    return internal::ParseUnsignedText(source_, line_, token, text, what);
  }

  BigRational ParseRational(const LineToken& token) {
    return internal::ParseRational(source_, line_, token);
  }

  struct PointExpect {
    std::uint64_t domain_size = 0;
    BigRational value;
    Location location;  // for range/duplicate diagnostics after parse
  };

  std::string_view text_;
  std::string_view source_;
  std::size_t line_ = 1;
  ModelSpec spec_;
  bool saw_name_ = false;
  bool saw_sentence_ = false;
  bool saw_domain_ = false;
  bool saw_method_ = false;
  std::set<logic::RelationId> weighted_;
  std::vector<PointExpect> point_expects_;
};

}  // namespace

ModelSpec ParseModel(std::string_view text, std::string_view source) {
  return ModelParser(text, source).Parse();
}

ModelSpec LoadModelFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open model file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseModel(buffer.str(), path);
}

std::string PrintModel(const ModelSpec& spec) {
  std::ostringstream out;
  if (!spec.name.empty()) out << "model " << spec.name << "\n";
  for (logic::RelationId id = 0; id < spec.vocabulary.size(); ++id) {
    out << "predicate " << spec.vocabulary.name(id) << " "
        << spec.vocabulary.arity(id) << "\n";
  }
  out << "sentence " << logic::ToString(spec.sentence, spec.vocabulary)
      << "\n";
  for (logic::RelationId id = 0; id < spec.vocabulary.size(); ++id) {
    const BigRational& positive = spec.vocabulary.positive_weight(id);
    const BigRational& negative = spec.vocabulary.negative_weight(id);
    if (positive.IsOne() && negative.IsOne()) continue;
    out << "weight " << spec.vocabulary.name(id) << " " << positive.ToString()
        << " " << negative.ToString() << "\n";
  }
  if (spec.has_domain) {
    out << "domain " << spec.domain_lo;
    if (spec.IsSweep()) out << ".." << spec.domain_hi;
    out << "\n";
  }
  if (spec.method != api::Method::kAuto) {
    out << "method " << api::ToString(spec.method) << "\n";
  }
  if (spec.expect.has_value()) {
    out << "expect " << spec.expect->ToString() << "\n";
  }
  for (const auto& [domain_size, value] : spec.point_expects) {
    out << "expect " << domain_size << " = " << value.ToString() << "\n";
  }
  return out.str();
}

std::optional<api::Method> ParseMethodName(std::string_view text) {
  if (text == "auto") return api::Method::kAuto;
  if (text == "lifted-fo2") return api::Method::kLiftedFO2;
  if (text == "gamma-acyclic") return api::Method::kGammaAcyclic;
  if (text == "grounded") return api::Method::kGrounded;
  return std::nullopt;
}

}  // namespace swfomc::io
