#include "io/nnf_format.h"

#include <fstream>
#include <limits>
#include <sstream>
#include <unordered_map>
#include <utility>
#include <vector>

#include "io/diagnostics.h"
#include "io/line_lexer.h"

namespace swfomc::io {

namespace {

using internal::LineToken;
using numeric::BigRational;

class NnfParser {
 public:
  NnfParser(std::string_view text, std::string_view source)
      : text_(text), source_(source) {}

  NnfDocument Parse() {
    internal::ForEachLine(text_, [&](std::size_t number,
                                     std::string_view line) {
      line_ = number;
      ParseLine(line);
    });
    if (!saw_header_) Fail({line_, 1}, "missing 'nnf V E n' header");
    if (nodes_.size() != declared_nodes_) {
      Fail({line_, 1},
           "node count mismatch: header declares " +
               std::to_string(declared_nodes_) + ", file has " +
               std::to_string(nodes_.size()));
    }
    if (edges_.size() != declared_edges_) {
      Fail({line_, 1},
           "edge count mismatch: header declares " +
               std::to_string(declared_edges_) + ", nodes reference " +
               std::to_string(edges_.size()));
    }
    NnfDocument document;
    document.circuit = nnf::Circuit(
        variable_count_, std::move(nodes_), std::move(edges_),
        static_cast<nnf::Circuit::NodeId>(declared_nodes_ - 1));
    document.weights = std::move(weights_);
    document.weights.EnsureSize(variable_count_);
    document.expect = std::move(expect_);
    return document;
  }

 private:
  [[noreturn]] void Fail(Location location, const std::string& message) {
    internal::FailAt(source_, location, message);
  }

  void RequireTokenCount(const std::vector<LineToken>& tokens,
                         std::size_t count, const char* what) {
    if (tokens.size() < count) {
      Fail({line_, tokens.back().column},
           std::string(what) + ": expected " + std::to_string(count - 1) +
               " value(s)");
    }
    if (tokens.size() > count) {
      Fail({line_, tokens[count].column},
           std::string("unexpected trailing token '") + tokens[count].text +
               "' on " + what + " line");
    }
  }

  // A variable index in [1, n], returned 0-based.
  prop::VarId ParseVariable(const LineToken& token, const char* what) {
    std::uint64_t value =
        internal::ParseUnsigned(source_, line_, token, what);
    if (value == 0 || value > variable_count_) {
      Fail({line_, token.column},
           std::string(what) + " " + token.text + " out of range [1, " +
               std::to_string(variable_count_) + "]");
    }
    return static_cast<prop::VarId>(value - 1);
  }

  void ParseChildren(const std::vector<LineToken>& tokens, std::size_t from,
                     nnf::Circuit::Node* node) {
    std::uint64_t count = internal::ParseUnsigned(source_, line_,
                                                  tokens[from], "child count");
    if (tokens.size() - from - 1 != count) {
      Fail({line_, tokens[from].column},
           "child count " + std::to_string(count) + " does not match the " +
               std::to_string(tokens.size() - from - 1) +
               " child id(s) on the line");
    }
    node->children_begin = static_cast<std::uint32_t>(edges_.size());
    for (std::size_t i = from + 1; i < tokens.size(); ++i) {
      std::uint64_t child =
          internal::ParseUnsigned(source_, line_, tokens[i], "child id");
      if (child >= nodes_.size()) {
        Fail({line_, tokens[i].column},
             "child " + std::to_string(child) +
                 " does not precede its parent (node " +
                 std::to_string(nodes_.size()) + ")");
      }
      edges_.push_back(static_cast<nnf::Circuit::NodeId>(child));
    }
    node->children_end = static_cast<std::uint32_t>(edges_.size());
  }

  void ParseLine(std::string_view line) {
    std::vector<LineToken> tokens = internal::Tokenize(line);
    if (tokens.empty() || tokens.front().text == "c") return;
    const LineToken& head = tokens.front();
    if (!saw_header_) {
      if (head.text != "nnf") {
        Fail({line_, head.column},
             "expected 'nnf V E n' header, found '" + head.text + "'");
      }
      RequireTokenCount(tokens, 4, "header");
      declared_nodes_ =
          internal::ParseUnsigned(source_, line_, tokens[1], "node count");
      declared_edges_ =
          internal::ParseUnsigned(source_, line_, tokens[2], "edge count");
      std::uint64_t variables = internal::ParseUnsigned(
          source_, line_, tokens[3], "variable count");
      if (declared_nodes_ == 0) {
        Fail({line_, tokens[1].column}, "a circuit needs at least one node");
      }
      constexpr std::uint64_t kMax =
          std::numeric_limits<std::uint32_t>::max();
      if (declared_nodes_ > kMax || declared_edges_ > kMax ||
          variables > kMax) {
        Fail({line_, head.column}, "header counts exceed 2^32");
      }
      variable_count_ = static_cast<std::uint32_t>(variables);
      weights_.EnsureSize(variable_count_);
      saw_header_ = true;
      return;
    }
    if (head.text == "nnf") {
      Fail({line_, head.column}, "duplicate 'nnf' header");
    }
    if (head.text == "w") {
      RequireTokenCount(tokens, 4, "weight line");
      prop::VarId variable = ParseVariable(tokens[1], "weight variable");
      if (weight_set_.size() <= variable) weight_set_.resize(variable + 1);
      if (weight_set_[variable]) {
        Fail({line_, tokens[1].column},
             "weights of variable " + tokens[1].text + " set twice");
      }
      weight_set_[variable] = true;
      weights_.Set(variable,
                   internal::ParseRational(source_, line_, tokens[2]),
                   internal::ParseRational(source_, line_, tokens[3]));
      return;
    }
    if (head.text == "e") {
      RequireTokenCount(tokens, 2, "expect line");
      if (expect_.has_value()) {
        Fail({line_, head.column}, "duplicate 'e' line");
      }
      expect_ = internal::ParseRational(source_, line_, tokens[1]);
      return;
    }
    if (nodes_.size() >= declared_nodes_) {
      Fail({line_, head.column},
           "more nodes than the header's " + std::to_string(declared_nodes_));
    }
    if (head.text == "L") {
      RequireTokenCount(tokens, 2, "literal node");
      std::int64_t literal =
          internal::ParseSigned(source_, line_, tokens[1], "literal");
      std::uint64_t magnitude =
          static_cast<std::uint64_t>(literal < 0 ? -literal : literal);
      if (magnitude == 0 || magnitude > variable_count_) {
        Fail({line_, tokens[1].column},
             "literal " + tokens[1].text + " out of range [1, " +
                 std::to_string(variable_count_) + "]");
      }
      nodes_.push_back(nnf::Circuit::Node{
          .kind = nnf::NodeKind::kLiteral,
          .literal = prop::MakeLit(static_cast<prop::VarId>(magnitude - 1),
                                   literal > 0)});
      return;
    }
    if (head.text == "A") {
      if (tokens.size() < 2) {
        Fail({line_, head.column}, "AND node: missing child count");
      }
      nnf::Circuit::Node node{.kind = nnf::NodeKind::kAnd};
      ParseChildren(tokens, 1, &node);
      if (node.children_begin == node.children_end) {
        node.kind = nnf::NodeKind::kTrue;  // A 0: the TRUE sentinel
      }
      nodes_.push_back(node);
      return;
    }
    if (head.text == "O") {
      if (tokens.size() < 3) {
        Fail({line_, head.column},
             "OR node: expected 'O decision-var child-count children...'");
      }
      std::uint64_t decision =
          internal::ParseUnsigned(source_, line_, tokens[1], "decision");
      if (decision > variable_count_) {
        Fail({line_, tokens[1].column},
             "decision variable " + tokens[1].text + " out of range [0, " +
                 std::to_string(variable_count_) + "]");
      }
      nnf::Circuit::Node node{.kind = nnf::NodeKind::kOr};
      node.decision = decision == 0
                          ? nnf::kNoDecision
                          : static_cast<prop::VarId>(decision - 1);
      ParseChildren(tokens, 2, &node);
      if (node.children_begin == node.children_end) {
        // O j 0: the FALSE sentinel (c2d writes O 0 0).
        if (decision != 0) {
          Fail({line_, tokens[1].column},
               "a childless OR (FALSE) must use decision 0");
        }
        node.kind = nnf::NodeKind::kFalse;
        node.decision = nnf::kNoDecision;
      }
      nodes_.push_back(node);
      return;
    }
    Fail({line_, head.column},
         "unknown line '" + head.text +
             "' (expected c, w, e, L, A, or O)");
  }

  std::string_view text_;
  std::string_view source_;
  std::size_t line_ = 1;

  bool saw_header_ = false;
  std::uint64_t declared_nodes_ = 0;
  std::uint64_t declared_edges_ = 0;
  std::uint32_t variable_count_ = 0;
  std::vector<nnf::Circuit::Node> nodes_;
  std::vector<nnf::Circuit::NodeId> edges_;
  wmc::WeightMap weights_;
  std::vector<bool> weight_set_;
  std::optional<BigRational> expect_;
};

// The lifted dialect's parser: same line discipline as NnfParser (ids in
// file order, children precede parents, root last), with relation lines
// instead of weight lines and the counting-node extension.
class LiftedNnfParser {
 public:
  LiftedNnfParser(std::string_view text, std::string_view source)
      : text_(text), source_(source) {}

  LiftedNnfDocument Parse() {
    internal::ForEachLine(text_, [&](std::size_t number,
                                     std::string_view line) {
      line_ = number;
      ParseLine(line);
    });
    if (!saw_header_) Fail({line_, 1}, "missing 'lnnf V E R' header");
    if (relations_.size() != declared_relations_) {
      Fail({line_, 1},
           "relation count mismatch: header declares " +
               std::to_string(declared_relations_) + ", file has " +
               std::to_string(relations_.size()));
    }
    if (nodes_.size() != declared_nodes_) {
      Fail({line_, 1},
           "node count mismatch: header declares " +
               std::to_string(declared_nodes_) + ", file has " +
               std::to_string(nodes_.size()));
    }
    if (edges_.size() != declared_edges_) {
      Fail({line_, 1},
           "edge count mismatch: header declares " +
               std::to_string(declared_edges_) + ", nodes reference " +
               std::to_string(edges_.size()));
    }
    LiftedNnfDocument document;
    document.circuit = nnf::LiftedCircuit(
        std::move(relations_), std::move(constants_), std::move(nodes_),
        std::move(edges_),
        static_cast<nnf::LiftedCircuit::NodeId>(declared_nodes_ - 1));
    document.expect = std::move(expect_);
    return document;
  }

 private:
  [[noreturn]] void Fail(Location location, const std::string& message) {
    internal::FailAt(source_, location, message);
  }

  void RequireTokenCount(const std::vector<LineToken>& tokens,
                         std::size_t count, const char* what) {
    if (tokens.size() < count) {
      Fail({line_, tokens.back().column},
           std::string(what) + ": expected " + std::to_string(count - 1) +
               " value(s)");
    }
    if (tokens.size() > count) {
      Fail({line_, tokens[count].column},
           std::string("unexpected trailing token '") + tokens[count].text +
               "' on " + what + " line");
    }
  }

  void ParseChildren(const std::vector<LineToken>& tokens, std::size_t from,
                     nnf::LiftedCircuit::Node* node) {
    std::uint64_t count = internal::ParseUnsigned(source_, line_,
                                                  tokens[from], "child count");
    if (tokens.size() - from - 1 != count) {
      Fail({line_, tokens[from].column},
           "child count " + std::to_string(count) + " does not match the " +
               std::to_string(tokens.size() - from - 1) +
               " child id(s) on the line");
    }
    node->children_begin = static_cast<std::uint32_t>(edges_.size());
    for (std::size_t i = from + 1; i < tokens.size(); ++i) {
      std::uint64_t child =
          internal::ParseUnsigned(source_, line_, tokens[i], "child id");
      if (child >= nodes_.size()) {
        Fail({line_, tokens[i].column},
             "child " + std::to_string(child) +
                 " does not precede its parent (node " +
                 std::to_string(nodes_.size()) + ")");
      }
      edges_.push_back(static_cast<nnf::LiftedCircuit::NodeId>(child));
    }
    node->children_end = static_cast<std::uint32_t>(edges_.size());
  }

  void ParseLine(std::string_view line) {
    std::vector<LineToken> tokens = internal::Tokenize(line);
    if (tokens.empty() || tokens.front().text == "c") return;
    const LineToken& head = tokens.front();
    if (!saw_header_) {
      if (head.text != "lnnf") {
        Fail({line_, head.column},
             "expected 'lnnf V E R' header, found '" + head.text + "'");
      }
      RequireTokenCount(tokens, 4, "header");
      declared_nodes_ =
          internal::ParseUnsigned(source_, line_, tokens[1], "node count");
      declared_edges_ =
          internal::ParseUnsigned(source_, line_, tokens[2], "edge count");
      declared_relations_ = internal::ParseUnsigned(
          source_, line_, tokens[3], "relation count");
      if (declared_nodes_ == 0) {
        Fail({line_, tokens[1].column}, "a circuit needs at least one node");
      }
      constexpr std::uint64_t kMax =
          std::numeric_limits<std::uint32_t>::max();
      if (declared_nodes_ > kMax || declared_edges_ > kMax ||
          declared_relations_ > kMax) {
        Fail({line_, head.column}, "header counts exceed 2^32");
      }
      saw_header_ = true;
      return;
    }
    if (head.text == "lnnf") {
      Fail({line_, head.column}, "duplicate 'lnnf' header");
    }
    if (head.text == "r") {
      RequireTokenCount(tokens, 4, "relation line");
      if (relations_.size() >= declared_relations_) {
        Fail({line_, head.column},
             "more relation lines than the header's " +
                 std::to_string(declared_relations_));
      }
      relations_.push_back(nnf::LiftedCircuit::Relation{
          std::string(tokens[1].text),
          internal::ParseRational(source_, line_, tokens[2]),
          internal::ParseRational(source_, line_, tokens[3])});
      return;
    }
    if (head.text == "e") {
      RequireTokenCount(tokens, 3, "expect line");
      if (expect_.has_value()) {
        Fail({line_, head.column}, "duplicate 'e' line");
      }
      std::uint64_t n = internal::ParseUnsigned(source_, line_, tokens[1],
                                                "expect domain size");
      if (n == 0) {
        Fail({line_, tokens[1].column},
             "expect domain size must be >= 1 (a lifted circuit is not "
             "valid at n = 0)");
      }
      expect_ = {n, internal::ParseRational(source_, line_, tokens[2])};
      return;
    }
    if (nodes_.size() >= declared_nodes_) {
      Fail({line_, head.column},
           "more nodes than the header's " + std::to_string(declared_nodes_));
    }
    if (head.text == "K") {
      RequireTokenCount(tokens, 2, "constant node");
      BigRational value = internal::ParseRational(source_, line_, tokens[1]);
      std::string text = value.ToString();
      auto [it, inserted] = constant_slots_.emplace(
          text, static_cast<std::uint32_t>(constants_.size()));
      if (inserted) constants_.push_back(std::move(value));
      nodes_.push_back(nnf::LiftedCircuit::Node{
          .kind = nnf::LiftedCircuit::Kind::kConst, .index = it->second});
      return;
    }
    if (head.text == "W") {
      RequireTokenCount(tokens, 2, "weight node");
      std::int64_t reference = internal::ParseSigned(
          source_, line_, tokens[1], "relation reference");
      std::uint64_t magnitude =
          static_cast<std::uint64_t>(reference < 0 ? -reference : reference);
      if (magnitude == 0 || magnitude > declared_relations_) {
        Fail({line_, tokens[1].column},
             "relation reference " + tokens[1].text + " out of range [1, " +
                 std::to_string(declared_relations_) + "]");
      }
      nodes_.push_back(nnf::LiftedCircuit::Node{
          .kind = nnf::LiftedCircuit::Kind::kWeight,
          .index = static_cast<std::uint32_t>(magnitude - 1),
          .positive = reference > 0});
      return;
    }
    if (head.text == "A" || head.text == "O") {
      if (tokens.size() < 2) {
        Fail({line_, head.column},
             std::string(head.text == "A" ? "AND" : "OR") +
                 " node: missing child count");
      }
      nnf::LiftedCircuit::Node node;
      node.kind = head.text == "A" ? nnf::LiftedCircuit::Kind::kAnd
                                   : nnf::LiftedCircuit::Kind::kOr;
      ParseChildren(tokens, 1, &node);
      nodes_.push_back(node);
      return;
    }
    if (head.text == "C") {
      if (tokens.size() < 3) {
        Fail({line_, head.column},
             "counting node: expected 'C cells child-count children...'");
      }
      std::uint64_t cells =
          internal::ParseUnsigned(source_, line_, tokens[1], "cell count");
      if (cells == 0) {
        Fail({line_, tokens[1].column},
             "counting node needs at least one cell");
      }
      if (cells > (std::uint64_t{1} << 20)) {
        Fail({line_, tokens[1].column}, "cell count exceeds 2^20");
      }
      nnf::LiftedCircuit::Node node;
      node.kind = nnf::LiftedCircuit::Kind::kCount;
      node.cells = static_cast<std::uint32_t>(cells);
      ParseChildren(tokens, 2, &node);
      std::uint64_t expected = cells + cells * (cells + 1) / 2;
      std::uint64_t actual = node.children_end - node.children_begin;
      if (actual != expected) {
        Fail({line_, tokens[1].column},
             "counting node over " + std::to_string(cells) +
                 " cells needs " + std::to_string(expected) +
                 " children (C + C(C+1)/2), got " + std::to_string(actual));
      }
      nodes_.push_back(node);
      return;
    }
    Fail({line_, head.column},
         "unknown line '" + head.text +
             "' (expected c, r, e, K, W, A, O, or C)");
  }

  std::string_view text_;
  std::string_view source_;
  std::size_t line_ = 1;

  bool saw_header_ = false;
  std::uint64_t declared_nodes_ = 0;
  std::uint64_t declared_edges_ = 0;
  std::uint64_t declared_relations_ = 0;
  std::vector<nnf::LiftedCircuit::Relation> relations_;
  std::vector<BigRational> constants_;
  std::unordered_map<std::string, std::uint32_t> constant_slots_;
  std::vector<nnf::LiftedCircuit::Node> nodes_;
  std::vector<nnf::LiftedCircuit::NodeId> edges_;
  std::optional<std::pair<std::uint64_t, BigRational>> expect_;
};

// The first non-comment line's head token decides the dialect.
std::string_view HeaderToken(std::string_view text) {
  std::string_view header;
  internal::ForEachLine(text, [&](std::size_t, std::string_view line) {
    if (!header.empty()) return;
    std::vector<LineToken> tokens = internal::Tokenize(line);
    if (tokens.empty() || tokens.front().text == "c") return;
    header = tokens.front().text;
  });
  return header;
}

}  // namespace

NnfDocument ParseNnf(std::string_view text, std::string_view source) {
  return NnfParser(text, source).Parse();
}

NnfDocument LoadNnfFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open nnf file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseNnf(buffer.str(), path);
}

std::string PrintNnf(const NnfDocument& document) {
  const nnf::Circuit& circuit = document.circuit;
  std::ostringstream out;
  out << "nnf " << circuit.node_count() << " " << circuit.edge_count() << " "
      << circuit.variable_count() << "\n";
  for (prop::VarId v = 0; v < circuit.variable_count(); ++v) {
    const wmc::VariableWeights& weights = document.weights.Get(v);
    if (weights.positive.IsOne() && weights.negative.IsOne()) continue;
    out << "w " << v + 1 << " " << weights.positive.ToString() << " "
        << weights.negative.ToString() << "\n";
  }
  if (document.expect.has_value()) {
    out << "e " << document.expect->ToString() << "\n";
  }
  for (nnf::Circuit::NodeId id = 0; id < circuit.node_count(); ++id) {
    const nnf::Circuit::Node& node = circuit.node(id);
    switch (node.kind) {
      case nnf::NodeKind::kTrue:
        out << "A 0\n";
        break;
      case nnf::NodeKind::kFalse:
        out << "O 0 0\n";
        break;
      case nnf::NodeKind::kLiteral: {
        std::int64_t variable =
            static_cast<std::int64_t>(prop::LitVariable(node.literal)) + 1;
        out << "L " << (prop::LitPositive(node.literal) ? variable : -variable)
            << "\n";
        break;
      }
      case nnf::NodeKind::kAnd: {
        std::span<const nnf::Circuit::NodeId> children = circuit.Children(id);
        out << "A " << children.size();
        for (nnf::Circuit::NodeId child : children) out << " " << child;
        out << "\n";
        break;
      }
      case nnf::NodeKind::kOr: {
        std::span<const nnf::Circuit::NodeId> children = circuit.Children(id);
        out << "O "
            << (node.decision == nnf::kNoDecision
                    ? std::uint64_t{0}
                    : static_cast<std::uint64_t>(node.decision) + 1)
            << " " << children.size();
        for (nnf::Circuit::NodeId child : children) out << " " << child;
        out << "\n";
        break;
      }
    }
  }
  return out.str();
}

LiftedNnfDocument ParseLiftedNnf(std::string_view text,
                                 std::string_view source) {
  return LiftedNnfParser(text, source).Parse();
}

LiftedNnfDocument LoadLiftedNnfFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open nnf file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseLiftedNnf(buffer.str(), path);
}

std::string PrintLiftedNnf(const LiftedNnfDocument& document) {
  const nnf::LiftedCircuit& circuit = document.circuit;
  std::ostringstream out;
  out << "lnnf " << circuit.node_count() << " " << circuit.edge_count() << " "
      << circuit.relations().size() << "\n";
  for (const nnf::LiftedCircuit::Relation& relation : circuit.relations()) {
    out << "r " << relation.name << " " << relation.positive_weight.ToString()
        << " " << relation.negative_weight.ToString() << "\n";
  }
  if (document.expect.has_value()) {
    out << "e " << document.expect->first << " "
        << document.expect->second.ToString() << "\n";
  }
  for (nnf::LiftedCircuit::NodeId id = 0; id < circuit.node_count(); ++id) {
    const nnf::LiftedCircuit::Node& node = circuit.node(id);
    switch (node.kind) {
      case nnf::LiftedCircuit::Kind::kConst:
        out << "K " << circuit.constants()[node.index].ToString() << "\n";
        break;
      case nnf::LiftedCircuit::Kind::kWeight: {
        std::int64_t reference = static_cast<std::int64_t>(node.index) + 1;
        out << "W " << (node.positive ? reference : -reference) << "\n";
        break;
      }
      case nnf::LiftedCircuit::Kind::kAnd:
      case nnf::LiftedCircuit::Kind::kOr: {
        std::span<const nnf::LiftedCircuit::NodeId> children =
            circuit.Children(id);
        out << (node.kind == nnf::LiftedCircuit::Kind::kAnd ? "A " : "O ")
            << children.size();
        for (nnf::LiftedCircuit::NodeId child : children) out << " " << child;
        out << "\n";
        break;
      }
      case nnf::LiftedCircuit::Kind::kCount: {
        std::span<const nnf::LiftedCircuit::NodeId> children =
            circuit.Children(id);
        out << "C " << node.cells << " " << children.size();
        for (nnf::LiftedCircuit::NodeId child : children) out << " " << child;
        out << "\n";
        break;
      }
    }
  }
  return out.str();
}

AnyNnfDocument ParseAnyNnf(std::string_view text, std::string_view source) {
  if (HeaderToken(text) == "lnnf") {
    return ParseLiftedNnf(text, source);
  }
  // Everything else — including a missing or malformed header — goes to
  // the grounded parser, whose diagnostics name the expected header.
  return ParseNnf(text, source);
}

AnyNnfDocument LoadAnyNnfFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open nnf file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseAnyNnf(buffer.str(), path);
}

}  // namespace swfomc::io
