#ifndef SWFOMC_IO_NNF_FORMAT_H_
#define SWFOMC_IO_NNF_FORMAT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "nnf/circuit.h"
#include "nnf/lifted_circuit.h"
#include "numeric/rational.h"
#include "wmc/weights.h"

namespace swfomc::io {

/// A serialized compiled query: the d-DNNF circuit plus the weight vector
/// it was compiled under and (optionally) the value it must evaluate to —
/// everything `swfomc eval` needs to serve or verify a circuit without
/// the original model file.
struct NnfDocument {
  nnf::Circuit circuit;
  /// Sized to circuit.variable_count(); unlisted variables weigh (1, 1).
  wmc::WeightMap weights;
  /// The expected evaluation under `weights` (the `e` line) — lets
  /// `swfomc eval --check` replay a compile→eval pipeline bit-exactly.
  std::optional<numeric::BigRational> expect;
};

/// Parses the c2d-style `.nnf` dialect:
///
///   c free-text comment
///   nnf V E n            -- header, first: V nodes, E edges, n variables
///   w VAR W WBAR         -- optional; both weights of variable VAR
///                           (1-based) as exact rationals
///   e VALUE              -- optional, once; expected evaluation result
///   L l                  -- literal node, DIMACS literal (±1-based var)
///   A c i1 .. ic         -- AND with c children (A 0 = TRUE)
///   O j c i1 .. ic       -- OR deciding variable j (0 = none) with c
///                           children (O 0 0 = FALSE)
///
/// Node lines assign ids 0, 1, .. V-1 in order; children must reference
/// earlier ids (the file is a topologically ordered DAG) and the root is
/// the last node, as written by c2d/MiniC2D. Weight and `e` lines are
/// this dialect's extension — a file without them is plain c2d output and
/// evaluates as unweighted model counting.
///
/// Malformed input — a missing or wrong-count header, children that do
/// not precede their parent, out-of-range literals or decisions, a bad
/// edge total, duplicate weight lines — throws io::ParseError with
/// `source` and the offending line/column; never crashes.
NnfDocument ParseNnf(std::string_view text, std::string_view source = "");

/// Reads and parses a `.nnf` file; throws std::runtime_error when the
/// file cannot be read, io::ParseError when it cannot be parsed.
NnfDocument LoadNnfFile(const std::string& path);

/// Canonical rendering: header, weight lines for non-(1, 1) variables in
/// ascending order, the `e` line when present, then one line per node in
/// id order. PrintNnf is a parser fixpoint: ParseNnf(PrintNnf(d)) prints
/// identically, which the round-trip tests in tests/nnf_test.cpp rely on.
std::string PrintNnf(const NnfDocument& document);

/// A serialized lifted circuit: the domain-parametric circuit with its
/// relation table (names + compile-time weights) and, optionally, one
/// pinned (domain size, value) pair for `swfomc eval --check`.
struct LiftedNnfDocument {
  nnf::LiftedCircuit circuit;
  /// The `e N VALUE` line: circuit.Evaluate(N) must equal VALUE under the
  /// compile-time weights. Also serves as the default domain size when
  /// `swfomc eval` is run without --domain.
  std::optional<std::pair<std::uint64_t, numeric::BigRational>> expect;
};

/// Parses the lifted `.nnf` dialect (counting-node extension):
///
///   c free-text comment
///   lnnf V E R           -- header, first: V nodes, E edges, R relations
///   r NAME W WBAR        -- exactly R of these, assigning relation ids
///                           0, 1, .. R-1 in order; W/WBAR are the
///                           compile-time weights as exact rationals
///   e N VALUE            -- optional, once; expected Evaluate(N)
///   K VALUE              -- constant node
///   W l                  -- weight leaf, DIMACS-style ±1-based relation
///                           reference (W 2 = w of relation 1, W -2 = w̄)
///   A c i1 .. ic         -- product of c children (A 0 = 1)
///   O c i1 .. ic         -- sum of c children (O 0 = 0)
///   C m c i1 .. ic       -- counting node over m cells; c must equal
///                           m + m(m+1)/2 (the m cell weights, then the
///                           pair sums r_kl for k <= l, row-major)
///
/// Node lines assign ids 0, 1, .. V-1 in order; children must reference
/// earlier ids and the root is the last node, exactly like the grounded
/// dialect. Malformed input throws io::ParseError with `source` and the
/// offending line/column; never crashes.
LiftedNnfDocument ParseLiftedNnf(std::string_view text,
                                 std::string_view source = "");

/// Reads and parses a lifted `.nnf` file; throws std::runtime_error when
/// the file cannot be read, io::ParseError when it cannot be parsed.
LiftedNnfDocument LoadLiftedNnfFile(const std::string& path);

/// Canonical rendering: header, relation lines in id order, the `e` line
/// when present, then one line per node in id order. A parser fixpoint,
/// like PrintNnf.
std::string PrintLiftedNnf(const LiftedNnfDocument& document);

/// Either circuit dialect, distinguished by the header token.
using AnyNnfDocument = std::variant<NnfDocument, LiftedNnfDocument>;

/// Parses whichever dialect the header announces: 'nnf V E n' → grounded
/// NnfDocument, 'lnnf V E R' → LiftedNnfDocument.
AnyNnfDocument ParseAnyNnf(std::string_view text, std::string_view source = "");

/// Reads and parses a `.nnf` file of either dialect.
AnyNnfDocument LoadAnyNnfFile(const std::string& path);

}  // namespace swfomc::io

#endif  // SWFOMC_IO_NNF_FORMAT_H_
