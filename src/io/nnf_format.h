#ifndef SWFOMC_IO_NNF_FORMAT_H_
#define SWFOMC_IO_NNF_FORMAT_H_

#include <optional>
#include <string>
#include <string_view>

#include "nnf/circuit.h"
#include "numeric/rational.h"
#include "wmc/weights.h"

namespace swfomc::io {

/// A serialized compiled query: the d-DNNF circuit plus the weight vector
/// it was compiled under and (optionally) the value it must evaluate to —
/// everything `swfomc eval` needs to serve or verify a circuit without
/// the original model file.
struct NnfDocument {
  nnf::Circuit circuit;
  /// Sized to circuit.variable_count(); unlisted variables weigh (1, 1).
  wmc::WeightMap weights;
  /// The expected evaluation under `weights` (the `e` line) — lets
  /// `swfomc eval --check` replay a compile→eval pipeline bit-exactly.
  std::optional<numeric::BigRational> expect;
};

/// Parses the c2d-style `.nnf` dialect:
///
///   c free-text comment
///   nnf V E n            -- header, first: V nodes, E edges, n variables
///   w VAR W WBAR         -- optional; both weights of variable VAR
///                           (1-based) as exact rationals
///   e VALUE              -- optional, once; expected evaluation result
///   L l                  -- literal node, DIMACS literal (±1-based var)
///   A c i1 .. ic         -- AND with c children (A 0 = TRUE)
///   O j c i1 .. ic       -- OR deciding variable j (0 = none) with c
///                           children (O 0 0 = FALSE)
///
/// Node lines assign ids 0, 1, .. V-1 in order; children must reference
/// earlier ids (the file is a topologically ordered DAG) and the root is
/// the last node, as written by c2d/MiniC2D. Weight and `e` lines are
/// this dialect's extension — a file without them is plain c2d output and
/// evaluates as unweighted model counting.
///
/// Malformed input — a missing or wrong-count header, children that do
/// not precede their parent, out-of-range literals or decisions, a bad
/// edge total, duplicate weight lines — throws io::ParseError with
/// `source` and the offending line/column; never crashes.
NnfDocument ParseNnf(std::string_view text, std::string_view source = "");

/// Reads and parses a `.nnf` file; throws std::runtime_error when the
/// file cannot be read, io::ParseError when it cannot be parsed.
NnfDocument LoadNnfFile(const std::string& path);

/// Canonical rendering: header, weight lines for non-(1, 1) variables in
/// ascending order, the `e` line when present, then one line per node in
/// id order. PrintNnf is a parser fixpoint: ParseNnf(PrintNnf(d)) prints
/// identically, which the round-trip tests in tests/nnf_test.cpp rely on.
std::string PrintNnf(const NnfDocument& document);

}  // namespace swfomc::io

#endif  // SWFOMC_IO_NNF_FORMAT_H_
