#ifndef SWFOMC_IO_CNF_FORMAT_H_
#define SWFOMC_IO_CNF_FORMAT_H_

#include <string>
#include <string_view>

#include "prop/cnf.h"
#include "wmc/weights.h"

namespace swfomc::io {

/// A propositional WMC instance: CNF plus per-variable weights, ready to
/// hand to wmc::DpllCounter.
struct WeightedCnf {
  prop::CnfFormula cnf;
  wmc::WeightMap weights;  // sized to cnf.variable_count; defaults (1, 1)
};

/// Parses the weighted-DIMACS dialect used by exact counters in the
/// Cachet / MiniC2D family:
///
///   c free-text comment
///   p cnf VARS CLAUSES          -- required before any clause or weight
///   w VAR W WBAR                -- both weights of variable VAR (1-based)
///                                  as exact rationals
///   w LIT W                     -- MiniC2D-style: one literal's weight
///                                  (positive LIT sets w, negative sets w̄)
///   1 -2 3 0                    -- clauses, 0-terminated, may span lines
///
/// Weight lines take no trailing "0" terminator — `w 2 1/2 0` would be
/// ambiguous between a terminated literal-form line and w̄ = 0, so any
/// weight line ending in the bare token "0" is rejected with a hint; a
/// genuine zero weight is spelled `0/1` (e.g. `w 2 1/2 0/1`).
/// Unweighted variables default to (1, 1) — plain #SAT.
///
/// Malformed input — a missing or malformed header, literals out of the
/// declared range, more clauses than declared, a truncated final clause
/// (no terminating 0), bad weight lines, or a weight side set twice —
/// throws io::ParseError with `source` and the offending line/column;
/// never crashes.
WeightedCnf ParseWeightedCnf(std::string_view text,
                             std::string_view source = "");

/// Reads and parses a `.cnf` file; throws std::runtime_error when the
/// file cannot be read, io::ParseError when it cannot be parsed.
WeightedCnf LoadWeightedCnfFile(const std::string& path);

/// Canonical rendering: header, then one `w VAR W WBAR` line per
/// non-(1,1) variable in index order, then one 0-terminated clause per
/// line. ParseWeightedCnf(PrintWeightedCnf(x)) reproduces x exactly.
std::string PrintWeightedCnf(const WeightedCnf& instance);

}  // namespace swfomc::io

#endif  // SWFOMC_IO_CNF_FORMAT_H_
