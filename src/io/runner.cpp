#include "io/runner.h"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "logic/printer.h"

namespace swfomc::io {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Arms `budget` from the RunOptions envelope; returns whether any limit
/// was set. Called immediately before the timed evaluation so the
/// wall-clock deadline measures the evaluation, not setup.
bool ArmBudget(const RunOptions& options, runtime::Budget* budget) {
  if (!options.governed()) return false;
  if (options.budget_ms.has_value()) {
    budget->SetWallClockMs(*options.budget_ms);
  }
  if (options.max_decisions.has_value()) {
    budget->SetMaxDecisions(*options.max_decisions);
  }
  if (options.max_memory_bytes.has_value()) {
    budget->SetMaxMemoryBytes(*options.max_memory_bytes);
  }
  return true;
}

/// The `expect` check under governance: exact answers must match, bounds
/// must bracket, an aborted point verifies nothing.
bool PointMatchesExpected(const api::Engine::SweepPoint& point,
                          const numeric::BigRational& expect) {
  switch (point.outcome) {
    case api::Outcome::kExact:
      return point.value == expect;
    case api::Outcome::kBounds:
      return point.bounds.has_value() && point.bounds->lower <= expect &&
             expect <= point.bounds->upper;
    case api::Outcome::kAborted:
      return false;
  }
  return false;
}

/// The expectation that applies to the point at domain size `n`, if any:
/// an `expect N = VALUE` directive wins; the plain `expect` covers the
/// largest domain size.
const numeric::BigRational* ExpectForPoint(const ModelRunReport& report,
                                           std::uint64_t n) {
  for (const auto& [domain_size, value] : report.point_expects) {
    if (domain_size == n) return &value;
  }
  if (report.expected.has_value() && n == report.domain_hi) {
    return &*report.expected;
  }
  return nullptr;
}

void AddOutcomeFields(JsonValue* json, api::Outcome outcome,
                      runtime::StopReason stop_reason) {
  json->Add("outcome", JsonValue::MakeString(api::ToString(outcome)));
  if (stop_reason != runtime::StopReason::kNone) {
    json->Add("stop_reason",
              JsonValue::MakeString(runtime::ToString(stop_reason)));
  }
}

}  // namespace

ModelRunReport RunModel(const ModelSpec& spec, const RunOptions& options,
                        std::string source) {
  if (!spec.has_domain) {
    throw std::invalid_argument(
        source + ": model has no 'domain' directive; 'run' needs one "
        "(only 'compile' accepts a domain-less model)");
  }
  ModelRunReport report;
  report.source = std::move(source);
  report.name = spec.name;
  report.domain_lo = spec.domain_lo;
  report.domain_hi = spec.domain_hi;

  api::Engine::Options engine_options;
  engine_options.num_threads = options.num_threads;
  engine_options.metrics = options.metrics;
  engine_options.trace = options.trace;
  api::Engine engine(spec.vocabulary, engine_options);
  report.sentence =
      logic::ToString(spec.sentence, engine.vocabulary());
  report.route = engine.ExplainRoute(spec.sentence);

  api::Method method =
      options.method_override.value_or(spec.method);
  if (method == api::Method::kAuto) method = report.route.method;
  report.method_used = method;

  // Per-call governance: the budget rides on QueryOptions instead of
  // mutating the engine's shared Options.
  runtime::Budget budget;
  api::QueryOptions query_options;
  if (ArmBudget(options, &budget)) query_options.budget = &budget;

  auto start = std::chrono::steady_clock::now();
  if (spec.IsSweep()) {
    api::Engine::SweepResult sweep = engine.WFOMCSweep(
        spec.sentence, spec.domain_lo, spec.domain_hi, method, query_options);
    report.points = std::move(sweep.points);
    report.outcome = sweep.outcome;
    report.stop_reason = sweep.stop_reason;
  } else {
    api::Engine::Result result =
        engine.WFOMC(spec.sentence, spec.domain_lo, method, query_options);
    report.points.push_back(api::Engine::SweepPoint{
        spec.domain_lo, std::move(result.value), result.outcome,
        std::move(result.bounds), result.stop_reason});
    report.outcome = result.outcome;
    report.stop_reason = result.stop_reason;
    report.grounded_stats = std::move(result.grounded_stats);
  }
  report.elapsed_seconds = SecondsSince(start);

  report.expected = spec.expect;
  report.point_expects = spec.point_expects;
  // Check every point that has an applicable expectation — a sweep's
  // intermediate sizes included. (This used to look only at
  // points.back(), so a mid-sweep mismatch sailed through --check.)
  for (const api::Engine::SweepPoint& point : report.points) {
    const numeric::BigRational* expect =
        ExpectForPoint(report, point.domain_size);
    if (expect == nullptr) continue;
    if (!PointMatchesExpected(point, *expect)) {
      report.check_passed = false;
      if (!report.first_failed_point.has_value()) {
        report.first_failed_point = point.domain_size;
      }
    }
  }
  return report;
}

CnfRunReport RunWeightedCnf(const WeightedCnf& instance,
                            const RunOptions& options, std::string source) {
  CnfRunReport report;
  report.source = std::move(source);
  report.variables = instance.cnf.variable_count;
  report.clauses = instance.cnf.clauses.size();

  wmc::DpllCounter::Options counter_options;
  counter_options.num_threads = options.num_threads;
  counter_options.metrics = options.metrics;
  counter_options.trace = options.trace;
  runtime::Budget budget;
  if (ArmBudget(options, &budget)) counter_options.budget = &budget;

  // The cnf path bypasses api::Engine, so it claims its own query id for
  // trace correlation and wraps the count in a span itself.
  obs::TraceLog::Span span;
  if (options.trace != nullptr) {
    counter_options.trace_query_id = options.trace->NextQueryId();
    if (options.trace->SampledQuery(counter_options.trace_query_id)) {
      span = options.trace->BeginSpan("cnf_count");
      span.Num("query", counter_options.trace_query_id);
      span.Num("variables", static_cast<std::uint64_t>(report.variables));
      span.Num("clauses", report.clauses);
    }
  }
  wmc::DpllCounter counter(instance.cnf, instance.weights, counter_options);

  auto start = std::chrono::steady_clock::now();
  wmc::DpllCounter::CountResult counted = counter.CountBounded();
  report.elapsed_seconds = SecondsSince(start);
  span.Finish();
  switch (counted.outcome) {
    case wmc::DpllCounter::CountOutcome::kExact:
      report.outcome = api::Outcome::kExact;
      report.count = counted.value;
      report.upper = std::move(counted.value);
      break;
    case wmc::DpllCounter::CountOutcome::kBounds:
      report.outcome = api::Outcome::kBounds;
      report.count = std::move(counted.value);
      report.upper = std::move(counted.upper);
      break;
    case wmc::DpllCounter::CountOutcome::kAborted:
      report.outcome = api::Outcome::kAborted;
      break;
  }
  report.stop_reason = counted.stop_reason;
  report.stats = counter.stats();
  return report;
}

CompileOutcome RunCompile(const ModelSpec& spec, const RunOptions& options,
                          std::string source) {
  CompileOutcome outcome;
  CompileRunReport& report = outcome.report;
  report.source = std::move(source);
  report.name = spec.name;
  report.has_domain = spec.has_domain;
  report.domain_size = spec.has_domain ? spec.domain_hi : 0;

  api::Engine::Options engine_options;
  engine_options.metrics = options.metrics;
  engine_options.trace = options.trace;
  api::Engine engine(spec.vocabulary, engine_options);
  report.sentence = logic::ToString(spec.sentence, engine.vocabulary());
  report.route = engine.ExplainRoute(spec.sentence);

  api::CompileOptions compile_options;
  if (spec.has_domain) compile_options.domain_size = spec.domain_hi;
  compile_options.method = options.method_override.value_or(spec.method);
  runtime::Budget budget;
  if (ArmBudget(options, &budget)) compile_options.budget = &budget;

  auto start = std::chrono::steady_clock::now();
  api::CompileResult compiled = engine.Compile(spec.sentence, compile_options);
  report.compile_seconds = SecondsSince(start);

  report.outcome = compiled.outcome;
  report.stop_reason = compiled.stop_reason;
  report.expected = spec.expect;
  if (compiled.outcome != api::Outcome::kExact) {
    // The partial trace was discarded; there is no circuit and nothing to
    // check an `expect` against.
    report.check_passed = !report.expected.has_value();
    return outcome;
  }
  outcome.query = std::move(compiled.compiled);
  report.kind = outcome.query->kind();

  if (report.kind == api::CompiledQuery::Kind::kGrounded) {
    report.variables = outcome.query->circuit().variable_count();
    report.count = outcome.query->compile_count();
    report.search_stats = outcome.query->compile_stats();
    report.circuit_stats = outcome.query->circuit().ComputeStats();
  } else {
    report.lifted_stats = outcome.query->lifted_compile_stats();
    report.lifted_circuit_stats =
        outcome.query->lifted_circuit().ComputeStats();
    // A lifted circuit has no compile-time count; when the model pins a
    // domain, one evaluation pass reports the count there (and gives the
    // `expect` check something to compare against).
    if (spec.has_domain) {
      report.count = outcome.query->Evaluate(spec.domain_hi, {});
    }
  }
  if (report.expected.has_value()) {
    report.check_passed = report.count == *report.expected;
  }
  return outcome;
}

NnfDocument MakeNnfDocument(const api::CompiledQuery& query,
                            std::optional<numeric::BigRational> expect) {
  NnfDocument document;
  document.circuit = query.circuit();
  document.weights = query.GroundWeights({});
  document.weights.EnsureSize(document.circuit.variable_count());
  document.expect = std::move(expect);
  return document;
}

LiftedNnfDocument MakeLiftedNnfDocument(
    const api::CompiledQuery& query,
    std::optional<std::pair<std::uint64_t, numeric::BigRational>> expect) {
  LiftedNnfDocument document;
  document.circuit = query.lifted_circuit();
  document.expect = std::move(expect);
  return document;
}

EvalRunReport RunEval(const NnfDocument& document, std::string source) {
  EvalRunReport report;
  report.source = std::move(source);
  report.variables = document.circuit.variable_count();
  report.circuit_stats = document.circuit.ComputeStats();

  std::string violation;
  if (!document.circuit.Validate(&violation)) {
    throw std::runtime_error(report.source +
                             ": circuit is not well-formed d-DNNF: " +
                             violation);
  }
  auto start = std::chrono::steady_clock::now();
  report.value = document.circuit.Evaluate(document.weights);
  report.elapsed_seconds = SecondsSince(start);

  report.expected = document.expect;
  if (report.expected.has_value()) {
    report.check_passed = report.value == *report.expected;
  }
  return report;
}

EvalRunReport RunEval(const LiftedNnfDocument& document,
                      std::optional<std::uint64_t> domain_size,
                      std::string source) {
  EvalRunReport report;
  report.source = std::move(source);
  report.kind = api::CompiledQuery::Kind::kLifted;
  report.lifted_circuit_stats = document.circuit.ComputeStats();

  if (!domain_size.has_value() && document.expect.has_value()) {
    domain_size = document.expect->first;
  }
  if (!domain_size.has_value()) {
    throw std::runtime_error(
        report.source +
        ": lifted circuit evaluation needs a domain size; pass --domain N "
        "(the file has no 'e N VALUE' line to default from)");
  }
  report.domain_size = *domain_size;

  auto start = std::chrono::steady_clock::now();
  report.value = document.circuit.Evaluate(*domain_size);
  report.elapsed_seconds = SecondsSince(start);

  // The e line pins one (n, value) pair; it verifies nothing at any
  // other domain size.
  if (document.expect.has_value() &&
      document.expect->first == *domain_size) {
    report.expected = document.expect->second;
    report.check_passed = report.value == *report.expected;
  }
  return report;
}

JsonValue ToJson(const wmc::DpllCounter::Stats& stats) {
  JsonValue json = JsonValue::MakeObject();
  json.Add("decisions", JsonValue::MakeNumber(stats.decisions));
  json.Add("unit_propagations",
           JsonValue::MakeNumber(stats.unit_propagations));
  json.Add("component_splits", JsonValue::MakeNumber(stats.component_splits));
  json.Add("parallel_forks", JsonValue::MakeNumber(stats.parallel_forks));
  json.Add("cache_lookups", JsonValue::MakeNumber(stats.cache_lookups));
  json.Add("cache_hits", JsonValue::MakeNumber(stats.cache_hits));
  json.Add("cache_entries", JsonValue::MakeNumber(stats.cache_entries));
  json.Add("cache_collisions", JsonValue::MakeNumber(stats.cache_collisions));
  json.Add("cache_insertions", JsonValue::MakeNumber(stats.cache_insertions));
  json.Add("cache_evictions", JsonValue::MakeNumber(stats.cache_evictions));
  json.Add("cache_bytes", JsonValue::MakeNumber(stats.cache_bytes));
  json.Add("aborted_subtrees", JsonValue::MakeNumber(stats.aborted_subtrees));
  return json;
}

JsonValue ToJson(const ModelRunReport& report) {
  JsonValue json = JsonValue::MakeObject();
  json.Add("file", JsonValue::MakeString(report.source));
  if (!report.name.empty()) {
    json.Add("name", JsonValue::MakeString(report.name));
  }
  json.Add("sentence", JsonValue::MakeString(report.sentence));
  json.Add("method", JsonValue::MakeString(api::ToString(report.method_used)));

  JsonValue route = JsonValue::MakeObject();
  route.Add("method",
            JsonValue::MakeString(api::ToString(report.route.method)));
  route.Add("reason", JsonValue::MakeString(report.route.reason));
  json.Add("route", std::move(route));

  JsonValue domain = JsonValue::MakeObject();
  domain.Add("lo", JsonValue::MakeNumber(report.domain_lo));
  domain.Add("hi", JsonValue::MakeNumber(report.domain_hi));
  json.Add("domain", std::move(domain));

  JsonValue points = JsonValue::MakeArray();
  for (const api::Engine::SweepPoint& point : report.points) {
    JsonValue entry = JsonValue::MakeObject();
    entry.Add("n", JsonValue::MakeNumber(point.domain_size));
    switch (point.outcome) {
      case api::Outcome::kExact:
        entry.Add("wfomc", JsonValue::MakeString(point.value.ToString()));
        break;
      case api::Outcome::kBounds:
        entry.Add("lower",
                  JsonValue::MakeString(point.bounds->lower.ToString()));
        entry.Add("upper",
                  JsonValue::MakeString(point.bounds->upper.ToString()));
        break;
      case api::Outcome::kAborted:
        break;
    }
    if (point.outcome != api::Outcome::kExact ||
        report.outcome != api::Outcome::kExact) {
      AddOutcomeFields(&entry, point.outcome, point.stop_reason);
    }
    if (const numeric::BigRational* expect =
            ExpectForPoint(report, point.domain_size)) {
      entry.Add("expect", JsonValue::MakeString(expect->ToString()));
      entry.Add("check", JsonValue::MakeString(
                             PointMatchesExpected(point, *expect) ? "pass"
                                                                  : "fail"));
    }
    points.array.push_back(std::move(entry));
  }
  json.Add("points", std::move(points));
  if (report.outcome != api::Outcome::kExact) {
    AddOutcomeFields(&json, report.outcome, report.stop_reason);
  }

  if (report.grounded_stats.has_value()) {
    json.Add("stats", ToJson(*report.grounded_stats));
  }
  json.Add("elapsed_seconds", JsonValue::MakeNumber(report.elapsed_seconds));
  if (report.expected.has_value()) {
    json.Add("expect", JsonValue::MakeString(report.expected->ToString()));
  }
  if (report.expected.has_value() || !report.point_expects.empty()) {
    json.Add("check",
             JsonValue::MakeString(report.check_passed ? "pass" : "fail"));
  }
  return json;
}

JsonValue ToJson(const nnf::Circuit::Stats& stats) {
  JsonValue json = JsonValue::MakeObject();
  json.Add("nodes", JsonValue::MakeNumber(stats.nodes));
  json.Add("constant_nodes", JsonValue::MakeNumber(stats.constant_nodes));
  json.Add("literal_nodes", JsonValue::MakeNumber(stats.literal_nodes));
  json.Add("and_nodes", JsonValue::MakeNumber(stats.and_nodes));
  json.Add("or_nodes", JsonValue::MakeNumber(stats.or_nodes));
  json.Add("edges", JsonValue::MakeNumber(stats.edges));
  json.Add("depth", JsonValue::MakeNumber(stats.depth));
  return json;
}

JsonValue ToJson(const nnf::LiftedCircuit::Stats& stats) {
  JsonValue json = JsonValue::MakeObject();
  json.Add("nodes", JsonValue::MakeNumber(stats.nodes));
  json.Add("constant_nodes", JsonValue::MakeNumber(stats.constant_nodes));
  json.Add("weight_nodes", JsonValue::MakeNumber(stats.weight_nodes));
  json.Add("and_nodes", JsonValue::MakeNumber(stats.and_nodes));
  json.Add("or_nodes", JsonValue::MakeNumber(stats.or_nodes));
  json.Add("count_nodes", JsonValue::MakeNumber(stats.count_nodes));
  json.Add("edges", JsonValue::MakeNumber(stats.edges));
  json.Add("depth", JsonValue::MakeNumber(stats.depth));
  return json;
}

JsonValue ToJson(const fo2::LiftedCompileStats& stats) {
  JsonValue json = JsonValue::MakeObject();
  json.Add("unary_predicates",
           JsonValue::MakeNumber(stats.unary_predicates));
  json.Add("binary_predicates",
           JsonValue::MakeNumber(stats.binary_predicates));
  json.Add("zeroary_predicates",
           JsonValue::MakeNumber(stats.zeroary_predicates));
  json.Add("cells", JsonValue::MakeNumber(stats.cells));
  json.Add("valid_cells", JsonValue::MakeNumber(stats.valid_cells));
  return json;
}

JsonValue ToJson(const CompileRunReport& report) {
  JsonValue json = JsonValue::MakeObject();
  json.Add("file", JsonValue::MakeString(report.source));
  if (!report.name.empty()) {
    json.Add("name", JsonValue::MakeString(report.name));
  }
  json.Add("sentence", JsonValue::MakeString(report.sentence));
  bool lifted = report.kind == api::CompiledQuery::Kind::kLifted;
  json.Add("method", JsonValue::MakeString(lifted ? "compile-lifted"
                                                  : "compile-grounded"));
  json.Add("kind", JsonValue::MakeString(api::ToString(report.kind)));

  JsonValue route = JsonValue::MakeObject();
  route.Add("method",
            JsonValue::MakeString(api::ToString(report.route.method)));
  route.Add("reason", JsonValue::MakeString(report.route.reason));
  json.Add("route", std::move(route));

  if (report.has_domain) {
    json.Add("n", JsonValue::MakeNumber(report.domain_size));
  }
  if (report.outcome == api::Outcome::kExact) {
    if (lifted) {
      if (report.has_domain) {
        json.Add("wfomc", JsonValue::MakeString(report.count.ToString()));
      }
      json.Add("circuit", ToJson(report.lifted_circuit_stats));
      json.Add("stats", ToJson(report.lifted_stats));
    } else {
      json.Add("variables", JsonValue::MakeNumber(
                                static_cast<std::uint64_t>(report.variables)));
      json.Add("wfomc", JsonValue::MakeString(report.count.ToString()));
      json.Add("circuit", ToJson(report.circuit_stats));
      json.Add("stats", ToJson(report.search_stats));
    }
  } else {
    AddOutcomeFields(&json, report.outcome, report.stop_reason);
  }
  json.Add("compile_seconds", JsonValue::MakeNumber(report.compile_seconds));
  if (!report.output_path.empty()) {
    json.Add("output", JsonValue::MakeString(report.output_path));
  }
  if (report.expected.has_value()) {
    json.Add("expect", JsonValue::MakeString(report.expected->ToString()));
    json.Add("check",
             JsonValue::MakeString(report.check_passed ? "pass" : "fail"));
  }
  return json;
}

JsonValue ToJson(const EvalRunReport& report) {
  JsonValue json = JsonValue::MakeObject();
  json.Add("file", JsonValue::MakeString(report.source));
  json.Add("kind", JsonValue::MakeString(api::ToString(report.kind)));
  if (report.kind == api::CompiledQuery::Kind::kLifted) {
    json.Add("n", JsonValue::MakeNumber(report.domain_size));
    json.Add("circuit", ToJson(report.lifted_circuit_stats));
  } else {
    json.Add("variables", JsonValue::MakeNumber(
                              static_cast<std::uint64_t>(report.variables)));
    json.Add("circuit", ToJson(report.circuit_stats));
  }
  json.Add("wmc", JsonValue::MakeString(report.value.ToString()));
  json.Add("elapsed_seconds", JsonValue::MakeNumber(report.elapsed_seconds));
  if (report.expected.has_value()) {
    json.Add("expect", JsonValue::MakeString(report.expected->ToString()));
    json.Add("check",
             JsonValue::MakeString(report.check_passed ? "pass" : "fail"));
  }
  return json;
}

JsonValue ToJson(const CnfRunReport& report) {
  JsonValue json = JsonValue::MakeObject();
  json.Add("file", JsonValue::MakeString(report.source));
  json.Add("variables", JsonValue::MakeNumber(
                            static_cast<std::uint64_t>(report.variables)));
  json.Add("clauses", JsonValue::MakeNumber(report.clauses));
  switch (report.outcome) {
    case api::Outcome::kExact:
      json.Add("wmc", JsonValue::MakeString(report.count.ToString()));
      break;
    case api::Outcome::kBounds:
      json.Add("lower", JsonValue::MakeString(report.count.ToString()));
      json.Add("upper", JsonValue::MakeString(report.upper.ToString()));
      break;
    case api::Outcome::kAborted:
      break;
  }
  if (report.outcome != api::Outcome::kExact) {
    AddOutcomeFields(&json, report.outcome, report.stop_reason);
  }
  json.Add("stats", ToJson(report.stats));
  json.Add("elapsed_seconds", JsonValue::MakeNumber(report.elapsed_seconds));
  return json;
}

}  // namespace swfomc::io
