#include "io/runner.h"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "logic/printer.h"

namespace swfomc::io {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

ModelRunReport RunModel(const ModelSpec& spec, const RunOptions& options,
                        std::string source) {
  ModelRunReport report;
  report.source = std::move(source);
  report.name = spec.name;
  report.domain_lo = spec.domain_lo;
  report.domain_hi = spec.domain_hi;

  api::Engine engine(spec.vocabulary,
                     api::Engine::Options{options.num_threads});
  report.sentence =
      logic::ToString(spec.sentence, engine.vocabulary());
  report.route = engine.ExplainRoute(spec.sentence);

  api::Method method =
      options.method_override.value_or(spec.method);
  if (method == api::Method::kAuto) method = report.route.method;
  report.method_used = method;

  auto start = std::chrono::steady_clock::now();
  if (spec.IsSweep()) {
    api::Engine::SweepResult sweep = engine.WFOMCSweep(
        spec.sentence, spec.domain_lo, spec.domain_hi, method);
    report.points = std::move(sweep.points);
  } else {
    api::Engine::Result result =
        engine.WFOMC(spec.sentence, spec.domain_lo, method);
    report.points.push_back(
        api::Engine::SweepPoint{spec.domain_lo, std::move(result.value)});
    report.grounded_stats = std::move(result.grounded_stats);
  }
  report.elapsed_seconds = SecondsSince(start);

  report.expected = spec.expect;
  if (report.expected.has_value()) {
    report.check_passed = report.points.back().value == *report.expected;
  }
  return report;
}

CnfRunReport RunWeightedCnf(const WeightedCnf& instance,
                            const RunOptions& options, std::string source) {
  CnfRunReport report;
  report.source = std::move(source);
  report.variables = instance.cnf.variable_count;
  report.clauses = instance.cnf.clauses.size();

  wmc::DpllCounter::Options counter_options;
  counter_options.num_threads = options.num_threads;
  wmc::DpllCounter counter(instance.cnf, instance.weights, counter_options);

  auto start = std::chrono::steady_clock::now();
  report.count = counter.Count();
  report.elapsed_seconds = SecondsSince(start);
  report.stats = counter.stats();
  return report;
}

CompileOutcome RunCompile(const ModelSpec& spec, std::string source) {
  CompileOutcome outcome;
  CompileRunReport& report = outcome.report;
  report.source = std::move(source);
  report.name = spec.name;
  report.domain_size = spec.domain_hi;

  api::Engine engine(spec.vocabulary);
  report.sentence = logic::ToString(spec.sentence, engine.vocabulary());
  report.route = engine.ExplainRoute(spec.sentence);

  auto start = std::chrono::steady_clock::now();
  outcome.query = engine.Compile(spec.sentence, spec.domain_hi);
  report.compile_seconds = SecondsSince(start);

  report.variables = outcome.query.circuit().variable_count();
  report.count = outcome.query.compile_count();
  report.search_stats = outcome.query.compile_stats();
  report.circuit_stats = outcome.query.circuit().ComputeStats();
  report.expected = spec.expect;
  if (report.expected.has_value()) {
    report.check_passed = report.count == *report.expected;
  }
  return outcome;
}

NnfDocument MakeNnfDocument(const api::CompiledQuery& query,
                            std::optional<numeric::BigRational> expect) {
  NnfDocument document;
  document.circuit = query.circuit();
  document.weights = query.GroundWeights({});
  document.weights.EnsureSize(document.circuit.variable_count());
  document.expect = std::move(expect);
  return document;
}

EvalRunReport RunEval(const NnfDocument& document, std::string source) {
  EvalRunReport report;
  report.source = std::move(source);
  report.variables = document.circuit.variable_count();
  report.circuit_stats = document.circuit.ComputeStats();

  std::string violation;
  if (!document.circuit.Validate(&violation)) {
    throw std::runtime_error(report.source +
                             ": circuit is not well-formed d-DNNF: " +
                             violation);
  }
  auto start = std::chrono::steady_clock::now();
  report.value = document.circuit.Evaluate(document.weights);
  report.elapsed_seconds = SecondsSince(start);

  report.expected = document.expect;
  if (report.expected.has_value()) {
    report.check_passed = report.value == *report.expected;
  }
  return report;
}

JsonValue ToJson(const wmc::DpllCounter::Stats& stats) {
  JsonValue json = JsonValue::MakeObject();
  json.Add("decisions", JsonValue::MakeNumber(stats.decisions));
  json.Add("unit_propagations",
           JsonValue::MakeNumber(stats.unit_propagations));
  json.Add("component_splits", JsonValue::MakeNumber(stats.component_splits));
  json.Add("parallel_forks", JsonValue::MakeNumber(stats.parallel_forks));
  json.Add("cache_lookups", JsonValue::MakeNumber(stats.cache_lookups));
  json.Add("cache_hits", JsonValue::MakeNumber(stats.cache_hits));
  json.Add("cache_entries", JsonValue::MakeNumber(stats.cache_entries));
  json.Add("cache_collisions", JsonValue::MakeNumber(stats.cache_collisions));
  json.Add("cache_insertions", JsonValue::MakeNumber(stats.cache_insertions));
  json.Add("cache_evictions", JsonValue::MakeNumber(stats.cache_evictions));
  return json;
}

JsonValue ToJson(const ModelRunReport& report) {
  JsonValue json = JsonValue::MakeObject();
  json.Add("file", JsonValue::MakeString(report.source));
  if (!report.name.empty()) {
    json.Add("name", JsonValue::MakeString(report.name));
  }
  json.Add("sentence", JsonValue::MakeString(report.sentence));
  json.Add("method", JsonValue::MakeString(api::ToString(report.method_used)));

  JsonValue route = JsonValue::MakeObject();
  route.Add("method",
            JsonValue::MakeString(api::ToString(report.route.method)));
  route.Add("reason", JsonValue::MakeString(report.route.reason));
  json.Add("route", std::move(route));

  JsonValue domain = JsonValue::MakeObject();
  domain.Add("lo", JsonValue::MakeNumber(report.domain_lo));
  domain.Add("hi", JsonValue::MakeNumber(report.domain_hi));
  json.Add("domain", std::move(domain));

  JsonValue points = JsonValue::MakeArray();
  for (const api::Engine::SweepPoint& point : report.points) {
    JsonValue entry = JsonValue::MakeObject();
    entry.Add("n", JsonValue::MakeNumber(point.domain_size));
    entry.Add("wfomc", JsonValue::MakeString(point.value.ToString()));
    points.array.push_back(std::move(entry));
  }
  json.Add("points", std::move(points));

  if (report.grounded_stats.has_value()) {
    json.Add("stats", ToJson(*report.grounded_stats));
  }
  json.Add("elapsed_seconds", JsonValue::MakeNumber(report.elapsed_seconds));
  if (report.expected.has_value()) {
    json.Add("expect", JsonValue::MakeString(report.expected->ToString()));
    json.Add("check",
             JsonValue::MakeString(report.check_passed ? "pass" : "fail"));
  }
  return json;
}

JsonValue ToJson(const nnf::Circuit::Stats& stats) {
  JsonValue json = JsonValue::MakeObject();
  json.Add("nodes", JsonValue::MakeNumber(stats.nodes));
  json.Add("constant_nodes", JsonValue::MakeNumber(stats.constant_nodes));
  json.Add("literal_nodes", JsonValue::MakeNumber(stats.literal_nodes));
  json.Add("and_nodes", JsonValue::MakeNumber(stats.and_nodes));
  json.Add("or_nodes", JsonValue::MakeNumber(stats.or_nodes));
  json.Add("edges", JsonValue::MakeNumber(stats.edges));
  json.Add("depth", JsonValue::MakeNumber(stats.depth));
  return json;
}

JsonValue ToJson(const CompileRunReport& report) {
  JsonValue json = JsonValue::MakeObject();
  json.Add("file", JsonValue::MakeString(report.source));
  if (!report.name.empty()) {
    json.Add("name", JsonValue::MakeString(report.name));
  }
  json.Add("sentence", JsonValue::MakeString(report.sentence));
  json.Add("method", JsonValue::MakeString("compile-grounded"));

  JsonValue route = JsonValue::MakeObject();
  route.Add("method",
            JsonValue::MakeString(api::ToString(report.route.method)));
  route.Add("reason", JsonValue::MakeString(report.route.reason));
  json.Add("route", std::move(route));

  json.Add("n", JsonValue::MakeNumber(report.domain_size));
  json.Add("variables", JsonValue::MakeNumber(
                            static_cast<std::uint64_t>(report.variables)));
  json.Add("wfomc", JsonValue::MakeString(report.count.ToString()));
  json.Add("circuit", ToJson(report.circuit_stats));
  json.Add("stats", ToJson(report.search_stats));
  json.Add("compile_seconds", JsonValue::MakeNumber(report.compile_seconds));
  if (!report.output_path.empty()) {
    json.Add("output", JsonValue::MakeString(report.output_path));
  }
  if (report.expected.has_value()) {
    json.Add("expect", JsonValue::MakeString(report.expected->ToString()));
    json.Add("check",
             JsonValue::MakeString(report.check_passed ? "pass" : "fail"));
  }
  return json;
}

JsonValue ToJson(const EvalRunReport& report) {
  JsonValue json = JsonValue::MakeObject();
  json.Add("file", JsonValue::MakeString(report.source));
  json.Add("variables", JsonValue::MakeNumber(
                            static_cast<std::uint64_t>(report.variables)));
  json.Add("circuit", ToJson(report.circuit_stats));
  json.Add("wmc", JsonValue::MakeString(report.value.ToString()));
  json.Add("elapsed_seconds", JsonValue::MakeNumber(report.elapsed_seconds));
  if (report.expected.has_value()) {
    json.Add("expect", JsonValue::MakeString(report.expected->ToString()));
    json.Add("check",
             JsonValue::MakeString(report.check_passed ? "pass" : "fail"));
  }
  return json;
}

JsonValue ToJson(const CnfRunReport& report) {
  JsonValue json = JsonValue::MakeObject();
  json.Add("file", JsonValue::MakeString(report.source));
  json.Add("variables", JsonValue::MakeNumber(
                            static_cast<std::uint64_t>(report.variables)));
  json.Add("clauses", JsonValue::MakeNumber(report.clauses));
  json.Add("wmc", JsonValue::MakeString(report.count.ToString()));
  json.Add("stats", ToJson(report.stats));
  json.Add("elapsed_seconds", JsonValue::MakeNumber(report.elapsed_seconds));
  return json;
}

}  // namespace swfomc::io
