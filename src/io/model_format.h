#ifndef SWFOMC_IO_MODEL_FORMAT_H_
#define SWFOMC_IO_MODEL_FORMAT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "api/engine.h"
#include "io/diagnostics.h"
#include "logic/formula.h"
#include "logic/vocabulary.h"
#include "numeric/rational.h"

namespace swfomc::io {

/// A weighted WFOMC workload parsed from a `.model` file: the sentence,
/// its weighted vocabulary, and the domain size (or sweep range) to count
/// over — everything a recompile used to be needed for.
///
/// The format is line-oriented; `#` starts a comment (full line or after
/// a directive) and blank lines are ignored:
///
///   model NAME                  -- optional; a label for reports
///   predicate NAME ARITY        -- optional; pre-declares a relation.
///                                  Must precede `sentence`; duplicate
///                                  declarations are an error.
///   sentence FO-SENTENCE        -- required, once; the parser syntax of
///                                  logic/parser.h. Undeclared relations
///                                  are added with the observed arity.
///   weight NAME W WBAR          -- optional; exact rationals ("2", "-1",
///                                  "1/2"). NAME must be declared or used
///                                  by the sentence; one weight line per
///                                  relation. Defaults to (1, 1).
///   domain N                    -- optional, once; or `domain LO..HI`
///                                  for a sweep over every size in range.
///                                  A model without a domain can only be
///                                  compiled to a lifted (domain-
///                                  parametric) circuit; `run` and the
///                                  grounded compiler need one.
///   method NAME                 -- optional; auto | lifted-fo2 |
///                                  gamma-acyclic | grounded. Default auto.
///   expect VALUE                -- optional; the exact WFOMC value at the
///                                  largest domain size. Lets a runner
///                                  verify the count (`swfomc run --check`).
///   expect N = VALUE            -- optional, repeatable; the exact WFOMC
///                                  value at domain size N. N must lie in
///                                  the domain range, each N at most once,
///                                  and a plain `expect` already covers
///                                  the largest size (so `expect HI = ...`
///                                  alongside it is a conflict error).
struct ModelSpec {
  std::string name;
  logic::Vocabulary vocabulary;  // weights applied
  logic::Formula sentence;
  std::string sentence_text;  // verbatim, as it appeared in the file
  /// False when the file has no `domain` directive — domain_lo/domain_hi
  /// are then meaningless (left 0). Such a model is a compile-only
  /// workload for the lifted compiler.
  bool has_domain = false;
  std::uint64_t domain_lo = 0;
  std::uint64_t domain_hi = 0;
  api::Method method = api::Method::kAuto;
  std::optional<numeric::BigRational> expect;
  /// Per-point expectations (`expect N = VALUE`), ascending in N —
  /// ParseModel sorts them, so the order is canonical whatever the file
  /// order was.
  std::vector<std::pair<std::uint64_t, numeric::BigRational>> point_expects;

  bool IsSweep() const { return domain_lo != domain_hi; }
};

/// Parses a `.model` document. Throws io::ParseError (with `source` and
/// the 1-based line/column of the offending token) on any malformed
/// input — unknown directives, duplicate declarations, bad weights,
/// missing required directives, FO syntax errors; never crashes.
ModelSpec ParseModel(std::string_view text, std::string_view source = "");

/// Reads and parses a `.model` file; throws std::runtime_error when the
/// file cannot be read, io::ParseError when it cannot be parsed.
ModelSpec LoadModelFile(const std::string& path);

/// Canonical rendering: directives in the fixed order (model, predicate,
/// sentence, weight, domain, method, expect), predicates and weights in
/// vocabulary order, the sentence reprinted by logic::ToString, unit
/// weights omitted, `method auto` omitted. PrintModel is a fixpoint:
/// ParseModel(PrintModel(s)) prints identically, which the round-trip
/// fuzz test in tests/io_test.cpp relies on.
std::string PrintModel(const ModelSpec& spec);

/// Method name <-> enum for directives and CLI flags; ParseMethod returns
/// nullopt for an unknown name ("auto" maps to Method::kAuto).
std::optional<api::Method> ParseMethodName(std::string_view text);

}  // namespace swfomc::io

#endif  // SWFOMC_IO_MODEL_FORMAT_H_
