#ifndef SWFOMC_IO_DIAGNOSTICS_H_
#define SWFOMC_IO_DIAGNOSTICS_H_

#include <cstddef>
#include <stdexcept>
#include <string>

namespace swfomc::io {

/// A 1-based position inside a text document.
struct Location {
  std::size_t line = 1;
  std::size_t column = 1;
};

/// Every reader in this module reports malformed input through ParseError,
/// never by crashing: the exception carries the source name (usually a file
/// path), the 1-based line/column of the offending token, and a message.
/// what() renders the conventional "file:line:column: message" form that
/// editors and CI logs understand.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::string source, Location location, std::string message)
      : std::runtime_error((source.empty() ? std::string("<input>") : source) +
                           ":" + std::to_string(location.line) + ":" +
                           std::to_string(location.column) + ": " + message),
        source_(std::move(source)),
        location_(location),
        message_(std::move(message)) {}

  const std::string& source() const { return source_; }
  const Location& location() const { return location_; }
  const std::string& message() const { return message_; }

 private:
  std::string source_;
  Location location_;
  std::string message_;
};

}  // namespace swfomc::io

#endif  // SWFOMC_IO_DIAGNOSTICS_H_
