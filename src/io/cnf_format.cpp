#include "io/cnf_format.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <fstream>
#include <sstream>
#include <vector>

#include "io/diagnostics.h"
#include "io/line_lexer.h"
#include "numeric/rational.h"

namespace swfomc::io {

namespace {

using numeric::BigRational;
using internal::LineToken;

class CnfParser {
 public:
  CnfParser(std::string_view text, std::string_view source)
      : text_(text), source_(source) {}

  WeightedCnf Parse() {
    internal::ForEachLine(text_, [&](std::size_t number,
                                     std::string_view line) {
      line_ = number;
      ParseLine(line);
    });
    if (!saw_header_) Fail({line_, 1}, "missing 'p cnf VARS CLAUSES' header");
    if (!open_clause_.empty()) {
      Fail({line_, 1},
           "truncated CNF: final clause is missing its terminating 0");
    }
    if (instance_.cnf.clauses.size() != declared_clauses_) {
      Fail({line_, 1},
           "truncated CNF: header declares " +
               std::to_string(declared_clauses_) + " clauses but " +
               std::to_string(instance_.cnf.clauses.size()) + " were given");
    }
    return std::move(instance_);
  }

 private:
  [[noreturn]] void Fail(Location location, const std::string& message) const {
    throw ParseError(std::string(source_), location, message);
  }

  Location At(const LineToken& token) const { return {line_, token.column}; }

  void ParseLine(std::string_view line) {
    std::vector<LineToken> tokens = internal::Tokenize(line);
    if (tokens.empty()) return;
    if (tokens[0].text == "c") return;  // comment
    if (tokens[0].text == "p") {
      ParseHeader(tokens);
      return;
    }
    if (!saw_header_) {
      Fail(At(tokens[0]),
           "expected the 'p cnf VARS CLAUSES' header before this line");
    }
    if (tokens[0].text == "w") {
      ParseWeightLine(tokens);
      return;
    }
    ParseClauseTokens(tokens);
  }

  void ParseHeader(const std::vector<LineToken>& tokens) {
    if (saw_header_) Fail(At(tokens[0]), "duplicate 'p' header");
    if (tokens.size() != 4 || tokens[1].text != "cnf") {
      Fail(At(tokens[0]), "malformed header (expected 'p cnf VARS CLAUSES')");
    }
    saw_header_ = true;
    std::uint64_t variables = ParseUnsigned(tokens[2], "variable count");
    if (variables > std::numeric_limits<std::uint32_t>::max()) {
      Fail(At(tokens[2]), "variable count " + tokens[2].text +
                              " exceeds the supported maximum (2^32 - 1)");
    }
    instance_.cnf.variable_count = static_cast<std::uint32_t>(variables);
    declared_clauses_ = ParseUnsigned(tokens[3], "clause count");
    instance_.weights.EnsureSize(instance_.cnf.variable_count);
    // The declared count is untrusted; cap the speculative reserve so a
    // bogus header cannot demand gigabytes up front.
    instance_.cnf.clauses.reserve(
        std::min<std::size_t>(declared_clauses_, std::size_t{1} << 20));
    positive_set_.assign(instance_.cnf.variable_count, false);
    negative_set_.assign(instance_.cnf.variable_count, false);
  }

  void ParseWeightLine(const std::vector<LineToken>& tokens) {
    if (tokens.size() == 4) {
      // w VAR W WBAR. A literal trailing "0" cannot be told apart from a
      // terminated MiniC2D literal-form line, so that spelling is
      // rejected outright; a genuine zero weight is written "0/1".
      if (tokens[3].text == "0") {
        Fail(At(tokens[3]),
             "ambiguous trailing 0 (a terminated 'w LIT W' line or "
             "w̄ = 0?); write the zero weight as 0/1, and no terminator");
      }
      std::uint64_t var = ParseUnsigned(tokens[1], "variable");
      prop::VarId id = RequireVariable(tokens[1], var);
      SetWeight(tokens[1], id, /*positive=*/true, ParseRational(tokens[2]));
      SetWeight(tokens[1], id, /*positive=*/false, ParseRational(tokens[3]));
      return;
    }
    if (tokens.size() == 3) {
      // w LIT W (MiniC2D style: the sign picks the side)
      std::int64_t literal = ParseSigned(tokens[1], "literal");
      if (literal == 0) {
        Fail(At(tokens[1]), "weight literal must be nonzero");
      }
      std::uint64_t var =
          static_cast<std::uint64_t>(literal < 0 ? -literal : literal);
      prop::VarId id = RequireVariable(tokens[1], var);
      SetWeight(tokens[1], id, literal > 0, ParseRational(tokens[2]));
      return;
    }
    // A trailing "0" after either form would be ambiguous (is `w 2 1/2 0`
    // a terminated literal-form line or w̄ = 0?), so weight lines take no
    // terminator at all — reject with a hint rather than silently picking
    // one reading.
    std::string hint =
        tokens.size() > 1 && tokens.back().text == "0"
            ? "; weight lines take no trailing 0 terminator"
            : "";
    Fail(At(tokens[0]),
         "malformed weight line (expected 'w VAR W WBAR' or 'w LIT W'" +
             hint + ")");
  }

  prop::VarId RequireVariable(const LineToken& token, std::uint64_t var) {
    if (var == 0 || var > instance_.cnf.variable_count) {
      Fail(At(token), "variable " + token.text +
                          " out of range [1, " +
                          std::to_string(instance_.cnf.variable_count) + "]");
    }
    return static_cast<prop::VarId>(var - 1);
  }

  void SetWeight(const LineToken& token, prop::VarId id, bool positive,
                 BigRational value) {
    std::vector<bool>& seen = positive ? positive_set_ : negative_set_;
    if (seen[id]) {
      Fail(At(token), std::string("weight ") + (positive ? "w" : "w̄") +
                          " of variable " + std::to_string(id + 1) +
                          " set twice");
    }
    seen[id] = true;
    wmc::VariableWeights weights = instance_.weights.Get(id);
    (positive ? weights.positive : weights.negative) = std::move(value);
    instance_.weights.Set(id, std::move(weights.positive),
                          std::move(weights.negative));
  }

  void ParseClauseTokens(const std::vector<LineToken>& tokens) {
    for (const LineToken& token : tokens) {
      std::int64_t literal = ParseSigned(token, "literal");
      if (literal == 0) {
        if (instance_.cnf.clauses.size() == declared_clauses_) {
          Fail(At(token), "more clauses than the header's declared " +
                              std::to_string(declared_clauses_));
        }
        instance_.cnf.clauses.push_back(std::move(open_clause_));
        open_clause_.clear();
        continue;
      }
      std::uint64_t var =
          static_cast<std::uint64_t>(literal < 0 ? -literal : literal);
      prop::VarId id = RequireVariable(token, var);
      open_clause_.push_back(prop::Literal{id, literal > 0});
    }
  }

  std::uint64_t ParseUnsigned(const LineToken& token, const char* what) {
    return internal::ParseUnsigned(source_, line_, token, what);
  }

  std::int64_t ParseSigned(const LineToken& token, const char* what) {
    return internal::ParseSigned(source_, line_, token, what);
  }

  BigRational ParseRational(const LineToken& token) {
    return internal::ParseRational(source_, line_, token);
  }

  std::string_view text_;
  std::string_view source_;
  std::size_t line_ = 1;
  WeightedCnf instance_;
  bool saw_header_ = false;
  std::size_t declared_clauses_ = 0;
  prop::Clause open_clause_;
  std::vector<bool> positive_set_;
  std::vector<bool> negative_set_;
};

}  // namespace

WeightedCnf ParseWeightedCnf(std::string_view text, std::string_view source) {
  return CnfParser(text, source).Parse();
}

WeightedCnf LoadWeightedCnfFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open cnf file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseWeightedCnf(buffer.str(), path);
}

std::string PrintWeightedCnf(const WeightedCnf& instance) {
  std::ostringstream out;
  out << "p cnf " << instance.cnf.variable_count << " "
      << instance.cnf.clauses.size() << "\n";
  for (prop::VarId id = 0; id < instance.cnf.variable_count; ++id) {
    const wmc::VariableWeights& weights = instance.weights.Get(id);
    if (weights.positive.IsOne() && weights.negative.IsOne()) continue;
    // A bare trailing "0" is rejected by the reader as ambiguous (see
    // ParseWeightLine), so a zero w̄ is spelled "0/1".
    out << "w " << (id + 1) << " " << weights.positive.ToString() << " "
        << (weights.negative.IsZero() ? "0/1"
                                      : weights.negative.ToString())
        << "\n";
  }
  for (const prop::Clause& clause : instance.cnf.clauses) {
    for (const prop::Literal& literal : clause) {
      out << (literal.positive ? "" : "-") << (literal.variable + 1) << " ";
    }
    out << "0\n";
  }
  return out.str();
}

}  // namespace swfomc::io
