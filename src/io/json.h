#ifndef SWFOMC_IO_JSON_H_
#define SWFOMC_IO_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "io/diagnostics.h"

namespace swfomc::io {

/// A small JSON document model: enough for the golden corpus, the
/// benchmark reports, and the CLI's machine-readable output, with no
/// external dependency. Numbers are kept verbatim (as their source text)
/// so exact integers and rationals survive a round trip untouched —
/// nothing in this library wants a double.
///
/// Objects preserve insertion order (serialization is deterministic and
/// diff-friendly); duplicate keys are a parse error.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;                                   // kBool
  std::string string;                                     // kString / kNumber
  std::vector<JsonValue> array;                           // kArray
  std::vector<std::pair<std::string, JsonValue>> object;  // kObject

  static JsonValue MakeNull() { return JsonValue{}; }
  static JsonValue MakeBool(bool value);
  /// The number's exact decimal rendering, e.g. "42", "-7", "0.125".
  static JsonValue MakeNumber(std::string text);
  static JsonValue MakeNumber(std::uint64_t value);
  /// Shortest round-trippable decimal rendering. Non-finite values have
  /// no JSON representation and serialize as null (never bare inf/nan,
  /// which the parser — like every conforming parser — rejects).
  static JsonValue MakeNumber(double value);
  static JsonValue MakeString(std::string text);
  static JsonValue MakeArray();
  static JsonValue MakeObject();

  /// Appends a member to an object (no duplicate check; builders are
  /// trusted). Returns a reference to the stored value.
  JsonValue& Add(std::string key, JsonValue value);

  /// Object member access; throws std::runtime_error when the key is
  /// absent or this is not an object.
  const JsonValue& At(const std::string& key) const;
  bool Has(const std::string& key) const;

  /// Serializes the value. `indent` < 0 renders one compact line; >= 0
  /// pretty-prints with that many spaces per nesting level.
  std::string Dump(int indent = 2) const;
};

/// Parses a complete JSON document. Supports objects, arrays, strings
/// (with the standard escapes, \uXXXX included for the BMP), numbers,
/// booleans, and null. Throws io::ParseError carrying `source` and the
/// line/column of the offending character; never crashes on malformed
/// input.
JsonValue ParseJson(std::string_view text, std::string_view source = "");

/// JSON string escaping (quotes not included).
std::string EscapeJson(std::string_view text);

}  // namespace swfomc::io

#endif  // SWFOMC_IO_JSON_H_
