#include "io/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace swfomc::io {

JsonValue JsonValue::MakeBool(bool value) {
  JsonValue json;
  json.kind = Kind::kBool;
  json.boolean = value;
  return json;
}

JsonValue JsonValue::MakeNumber(std::string text) {
  JsonValue json;
  json.kind = Kind::kNumber;
  json.string = std::move(text);
  return json;
}

JsonValue JsonValue::MakeNumber(std::uint64_t value) {
  return MakeNumber(std::to_string(value));
}

JsonValue JsonValue::MakeNumber(double value) {
  // JSON has no representation for non-finite numbers; "%.17g" would
  // happily emit bare `inf`/`nan` tokens that no conforming parser (ours
  // included) accepts. Serialize them as null — a reader sees "value
  // unavailable" instead of a poisoned document.
  if (!std::isfinite(value)) return MakeNull();
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return MakeNumber(std::string(buffer));
}

JsonValue JsonValue::MakeString(std::string text) {
  JsonValue json;
  json.kind = Kind::kString;
  json.string = std::move(text);
  return json;
}

JsonValue JsonValue::MakeArray() {
  JsonValue json;
  json.kind = Kind::kArray;
  return json;
}

JsonValue JsonValue::MakeObject() {
  JsonValue json;
  json.kind = Kind::kObject;
  return json;
}

JsonValue& JsonValue::Add(std::string key, JsonValue value) {
  object.emplace_back(std::move(key), std::move(value));
  return object.back().second;
}

const JsonValue& JsonValue::At(const std::string& key) const {
  if (kind != Kind::kObject) {
    throw std::runtime_error("json: At('" + key + "') on a non-object");
  }
  for (const auto& [name, value] : object) {
    if (name == key) return value;
  }
  throw std::runtime_error("json: missing key '" + key + "'");
}

bool JsonValue::Has(const std::string& key) const {
  if (kind != Kind::kObject) return false;
  for (const auto& [name, value] : object) {
    if (name == key) return true;
  }
  return false;
}

std::string EscapeJson(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

namespace {

void DumpTo(const JsonValue& value, int indent, int depth, std::string* out) {
  const bool pretty = indent >= 0;
  auto newline = [&](int levels) {
    if (!pretty) return;
    out->push_back('\n');
    out->append(static_cast<std::size_t>(indent) *
                    static_cast<std::size_t>(levels),
                ' ');
  };
  switch (value.kind) {
    case JsonValue::Kind::kNull:
      *out += "null";
      return;
    case JsonValue::Kind::kBool:
      *out += value.boolean ? "true" : "false";
      return;
    case JsonValue::Kind::kNumber:
      *out += value.string;
      return;
    case JsonValue::Kind::kString:
      out->push_back('"');
      *out += EscapeJson(value.string);
      out->push_back('"');
      return;
    case JsonValue::Kind::kArray: {
      if (value.array.empty()) {
        *out += "[]";
        return;
      }
      out->push_back('[');
      for (std::size_t i = 0; i < value.array.size(); ++i) {
        if (i > 0) out->push_back(',');
        newline(depth + 1);
        DumpTo(value.array[i], indent, depth + 1, out);
      }
      newline(depth);
      out->push_back(']');
      return;
    }
    case JsonValue::Kind::kObject: {
      if (value.object.empty()) {
        *out += "{}";
        return;
      }
      out->push_back('{');
      for (std::size_t i = 0; i < value.object.size(); ++i) {
        if (i > 0) out->push_back(',');
        newline(depth + 1);
        out->push_back('"');
        *out += EscapeJson(value.object[i].first);
        *out += pretty ? "\": " : "\":";
        DumpTo(value.object[i].second, indent, depth + 1, out);
      }
      newline(depth);
      out->push_back('}');
      return;
    }
  }
}

class JsonParser {
 public:
  JsonParser(std::string_view text, std::string_view source)
      : text_(text), source_(source) {}

  JsonValue Parse() {
    JsonValue value = ParseValue();
    SkipSpace();
    if (pos_ != text_.size()) Fail("trailing data after the document");
    return value;
  }

 private:
  [[noreturn]] void Fail(const std::string& why) const {
    throw ParseError(std::string(source_), Here(), "json: " + why);
  }

  Location Here() const {
    Location location;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++location.line;
        location.column = 1;
      } else {
        ++location.column;
      }
    }
    return location;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() {
    SkipSpace();
    if (pos_ >= text_.size()) Fail("unexpected end of input");
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) Fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue ParseValue() {
    char c = Peek();
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return JsonValue::MakeString(ParseString());
    if (ConsumeWord("true")) return JsonValue::MakeBool(true);
    if (ConsumeWord("false")) return JsonValue::MakeBool(false);
    if (ConsumeWord("null")) return JsonValue::MakeNull();
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      return ParseNumber();
    }
    Fail(std::string("unexpected character '") + c + "'");
  }

  JsonValue ParseNumber() {
    std::size_t start = pos_;
    auto digits = [&] {
      std::size_t before = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ == before) Fail("malformed number");
    };
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      digits();
    }
    return JsonValue::MakeNumber(std::string(text_.substr(start, pos_ - start)));
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) Fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) Fail("truncated escape");
        char escape = text_[pos_++];
        switch (escape) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) Fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                Fail("bad \\u escape digit");
              }
            }
            // UTF-8 encode (BMP only; surrogates unsupported).
            if (code >= 0xD800 && code <= 0xDFFF) {
              Fail("surrogate \\u escapes are unsupported");
            }
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            Fail("unsupported escape");
        }
      } else {
        out.push_back(c);
      }
    }
  }

  JsonValue ParseObject() {
    JsonValue value = JsonValue::MakeObject();
    Expect('{');
    if (Peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      std::string key = ParseString();
      if (value.Has(key)) Fail("duplicate object key '" + key + "'");
      Expect(':');
      value.Add(std::move(key), ParseValue());
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect('}');
      return value;
    }
  }

  JsonValue ParseArray() {
    JsonValue value = JsonValue::MakeArray();
    Expect('[');
    if (Peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.array.push_back(ParseValue());
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect(']');
      return value;
    }
  }

  std::string_view text_;
  std::string_view source_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(*this, indent, 0, &out);
  return out;
}

JsonValue ParseJson(std::string_view text, std::string_view source) {
  return JsonParser(text, source).Parse();
}

}  // namespace swfomc::io
