#ifndef SWFOMC_LOGIC_VOCABULARY_H_
#define SWFOMC_LOGIC_VOCABULARY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "numeric/rational.h"

namespace swfomc::logic {

/// Index of a relation symbol within a Vocabulary.
using RelationId = std::size_t;

/// A weighted relational vocabulary (σ, w, w̄) in the paper's sense
/// (Section 2): an ordered list of relation symbols R_1..R_m with arities,
/// where every symbol carries a pair of symmetric weights (w_i, w̄_i) — the
/// weight of a ground tuple being present resp. absent. Weights default to
/// (1, 1), which makes WFOMC coincide with unweighted model counting
/// (FOMC). Negative weights are permitted; the paper's Skolemization
/// (Lemma 3.3) and MLN reduction (Example 1.2) depend on them.
class Vocabulary {
 public:
  struct Relation {
    std::string name;
    std::size_t arity = 0;
    numeric::BigRational positive_weight{1};  // w_i
    numeric::BigRational negative_weight{1};  // w̄_i
  };

  Vocabulary() = default;

  /// Adds a relation; throws std::invalid_argument if the name is taken.
  RelationId AddRelation(const std::string& name, std::size_t arity,
                         numeric::BigRational positive_weight = 1,
                         numeric::BigRational negative_weight = 1);

  /// Looks up a relation by name.
  std::optional<RelationId> Find(const std::string& name) const;

  /// Relation id by name; throws std::out_of_range if absent.
  RelationId Require(const std::string& name) const;

  const Relation& relation(RelationId id) const { return relations_.at(id); }
  std::size_t size() const { return relations_.size(); }

  const std::string& name(RelationId id) const { return relation(id).name; }
  std::size_t arity(RelationId id) const { return relation(id).arity; }
  const numeric::BigRational& positive_weight(RelationId id) const {
    return relation(id).positive_weight;
  }
  const numeric::BigRational& negative_weight(RelationId id) const {
    return relation(id).negative_weight;
  }

  /// Replaces the weights of a relation.
  void SetWeights(RelationId id, numeric::BigRational positive_weight,
                  numeric::BigRational negative_weight);

  /// |Tup(n)| = Σ_i n^{arity(R_i)}: the number of ground tuples over a
  /// domain of size n.
  std::uint64_t GroundTupleCount(std::uint64_t domain_size) const;

  /// The maximum arity over all relations (0 for an empty vocabulary).
  std::size_t MaxArity() const;

  /// A fresh relation name with the given prefix that does not collide
  /// with any existing relation.
  std::string FreshName(const std::string& prefix) const;

 private:
  std::vector<Relation> relations_;
  std::unordered_map<std::string, RelationId> by_name_;
};

}  // namespace swfomc::logic

#endif  // SWFOMC_LOGIC_VOCABULARY_H_
