#include "logic/structure.h"

#include <cassert>
#include <stdexcept>

namespace swfomc::logic {

Structure::Structure(const Vocabulary& vocabulary, std::uint64_t domain_size)
    : vocabulary_(&vocabulary), domain_size_(domain_size) {
  offsets_.reserve(vocabulary.size());
  for (RelationId id = 0; id < vocabulary.size(); ++id) {
    offsets_.push_back(total_bits_);
    std::uint64_t count = 1;
    for (std::size_t i = 0; i < vocabulary.arity(id); ++i) {
      count *= domain_size_;
    }
    total_bits_ += count;
  }
  bits_.assign(total_bits_, false);
}

std::uint64_t Structure::FlatIndex(
    RelationId relation, const std::vector<std::uint64_t>& args) const {
  assert(args.size() == vocabulary_->arity(relation));
  std::uint64_t index = 0;
  for (std::uint64_t a : args) {
    assert(a < domain_size_);
    index = index * domain_size_ + a;
  }
  return offsets_[relation] + index;
}

std::uint64_t Structure::RelationBitCount(RelationId relation) const {
  std::uint64_t count = 1;
  for (std::size_t i = 0; i < vocabulary_->arity(relation); ++i) {
    count *= domain_size_;
  }
  return count;
}

bool Structure::Get(RelationId relation,
                    const std::vector<std::uint64_t>& args) const {
  return bits_[FlatIndex(relation, args)];
}

void Structure::Set(RelationId relation,
                    const std::vector<std::uint64_t>& args, bool value) {
  bits_[FlatIndex(relation, args)] = value;
}

std::uint64_t Structure::Cardinality(RelationId relation) const {
  std::uint64_t offset = offsets_[relation];
  std::uint64_t count = RelationBitCount(relation);
  std::uint64_t result = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (bits_[offset + i]) ++result;
  }
  return result;
}

bool Structure::GetBit(std::uint64_t flat_index) const {
  return bits_.at(flat_index);
}

void Structure::SetBit(std::uint64_t flat_index, bool value) {
  bits_.at(flat_index) = value;
}

void Structure::AssignFromMask(std::uint64_t encoded) {
  if (total_bits_ > 64) {
    throw std::invalid_argument(
        "Structure::AssignFromMask: more than 64 ground tuples");
  }
  for (std::uint64_t i = 0; i < total_bits_; ++i) {
    bits_[i] = (encoded >> i) & 1;
  }
}

numeric::BigRational Structure::Weight() const {
  numeric::BigRational weight(1);
  for (RelationId id = 0; id < vocabulary_->size(); ++id) {
    const numeric::BigRational& w = vocabulary_->positive_weight(id);
    const numeric::BigRational& w_bar = vocabulary_->negative_weight(id);
    std::uint64_t present = Cardinality(id);
    std::uint64_t absent = RelationBitCount(id) - present;
    if (present > 0) {
      weight *= numeric::BigRational::Pow(w, static_cast<std::int64_t>(present));
    }
    if (absent > 0) {
      weight *= numeric::BigRational::Pow(w_bar,
                                          static_cast<std::int64_t>(absent));
    }
  }
  return weight;
}

}  // namespace swfomc::logic
