#include "logic/vocabulary.h"

#include <stdexcept>

namespace swfomc::logic {

RelationId Vocabulary::AddRelation(const std::string& name, std::size_t arity,
                                   numeric::BigRational positive_weight,
                                   numeric::BigRational negative_weight) {
  if (by_name_.contains(name)) {
    throw std::invalid_argument("Vocabulary: duplicate relation " + name);
  }
  RelationId id = relations_.size();
  relations_.push_back(Relation{name, arity, std::move(positive_weight),
                                std::move(negative_weight)});
  by_name_.emplace(name, id);
  return id;
}

std::optional<RelationId> Vocabulary::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

RelationId Vocabulary::Require(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    throw std::out_of_range("Vocabulary: unknown relation " + name);
  }
  return it->second;
}

void Vocabulary::SetWeights(RelationId id,
                            numeric::BigRational positive_weight,
                            numeric::BigRational negative_weight) {
  relations_.at(id).positive_weight = std::move(positive_weight);
  relations_.at(id).negative_weight = std::move(negative_weight);
}

std::uint64_t Vocabulary::GroundTupleCount(std::uint64_t domain_size) const {
  std::uint64_t total = 0;
  for (const Relation& r : relations_) {
    std::uint64_t tuples = 1;
    for (std::size_t i = 0; i < r.arity; ++i) tuples *= domain_size;
    total += tuples;
  }
  return total;
}

std::size_t Vocabulary::MaxArity() const {
  std::size_t max_arity = 0;
  for (const Relation& r : relations_) {
    max_arity = std::max(max_arity, r.arity);
  }
  return max_arity;
}

std::string Vocabulary::FreshName(const std::string& prefix) const {
  if (!by_name_.contains(prefix)) return prefix;
  for (std::size_t i = 0;; ++i) {
    std::string candidate = prefix + std::to_string(i);
    if (!by_name_.contains(candidate)) return candidate;
  }
}

}  // namespace swfomc::logic
