#include "logic/parser.h"

#include <cctype>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace swfomc::logic {

namespace {

enum class TokenKind {
  kLParen,
  kRParen,
  kComma,
  kDot,       // '.' or ':' after quantifier variables
  kBang,      // '!'
  kAmp,       // '&'
  kPipe,      // '|'
  kImplies,   // '=>'
  kIff,       // '<=>'
  kEquals,    // '='
  kNotEquals, // '!='
  kIdent,     // relation or variable name
  kNumber,
  kForall,
  kExists,
  kTrue,
  kFalse,
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  std::uint64_t number = 0;
  std::size_t position = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) { Advance(); }

  const Token& current() const { return current_; }

  void Advance() {
    SkipWhitespace();
    current_.position = pos_;
    if (pos_ >= text_.size()) {
      current_ = Token{TokenKind::kEnd, "", 0, pos_};
      return;
    }
    char c = text_[pos_];
    switch (c) {
      case '(': ++pos_; current_ = {TokenKind::kLParen, "(", 0, pos_}; return;
      case ')': ++pos_; current_ = {TokenKind::kRParen, ")", 0, pos_}; return;
      case ',': ++pos_; current_ = {TokenKind::kComma, ",", 0, pos_}; return;
      case '.':
      case ':': ++pos_; current_ = {TokenKind::kDot, ".", 0, pos_}; return;
      case '&': ++pos_; current_ = {TokenKind::kAmp, "&", 0, pos_}; return;
      case '|': ++pos_; current_ = {TokenKind::kPipe, "|", 0, pos_}; return;
      case '!':
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
          pos_ += 2;
          current_ = {TokenKind::kNotEquals, "!=", 0, pos_};
        } else {
          ++pos_;
          current_ = {TokenKind::kBang, "!", 0, pos_};
        }
        return;
      case '=':
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '>') {
          pos_ += 2;
          current_ = {TokenKind::kImplies, "=>", 0, pos_};
        } else {
          ++pos_;
          current_ = {TokenKind::kEquals, "=", 0, pos_};
        }
        return;
      case '<':
        if (text_.substr(pos_, 3) == "<=>") {
          pos_ += 3;
          current_ = {TokenKind::kIff, "<=>", 0, pos_};
          return;
        }
        Fail("unexpected '<'");
      case '-':
        if (text_.substr(pos_, 2) == "->") {
          pos_ += 2;
          current_ = {TokenKind::kImplies, "->", 0, pos_};
          return;
        }
        Fail("unexpected '-'");
      default:
        break;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::uint64_t value = 0;
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        value = value * 10 + static_cast<std::uint64_t>(text_[pos_] - '0');
        ++pos_;
      }
      current_ = {TokenKind::kNumber, std::string(text_.substr(start, pos_ - start)),
                  value, start};
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_' || text_[pos_] == '\'')) {
        ++pos_;
      }
      std::string word(text_.substr(start, pos_ - start));
      if (word == "forall") {
        current_ = {TokenKind::kForall, word, 0, start};
      } else if (word == "exists") {
        current_ = {TokenKind::kExists, word, 0, start};
      } else if (word == "true") {
        current_ = {TokenKind::kTrue, word, 0, start};
      } else if (word == "false") {
        current_ = {TokenKind::kFalse, word, 0, start};
      } else {
        current_ = {TokenKind::kIdent, std::move(word), 0, start};
      }
      return;
    }
    Fail("unexpected character '" + std::string(1, c) + "'");
  }

  std::string Error(const std::string& message) const {
    return "FO parse error at offset " + std::to_string(pos_) + ": " + message;
  }

  /// Throws SyntaxError at the lexer's current position.
  [[noreturn]] void Fail(const std::string& message) const {
    throw SyntaxError(Error(message), pos_);
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  Token current_;
};

class Parser {
 public:
  Parser(std::string_view text, Vocabulary* vocabulary, bool allow_declare)
      : lexer_(text), vocabulary_(vocabulary), allow_declare_(allow_declare) {}

  Formula ParseFormula() {
    Formula result = ParseIff();
    if (lexer_.current().kind != TokenKind::kEnd) {
      lexer_.Fail("trailing input after formula");
    }
    return result;
  }

 private:
  Formula ParseIff() {
    Formula left = ParseImplies();
    while (lexer_.current().kind == TokenKind::kIff) {
      lexer_.Advance();
      Formula right = ParseImplies();
      left = Iff(std::move(left), std::move(right));
    }
    return left;
  }

  Formula ParseImplies() {
    Formula left = ParseOr();
    if (lexer_.current().kind == TokenKind::kImplies) {
      lexer_.Advance();
      Formula right = ParseImplies();  // right associative
      return Implies(std::move(left), std::move(right));
    }
    return left;
  }

  Formula ParseOr() {
    std::vector<Formula> operands{ParseAnd()};
    while (lexer_.current().kind == TokenKind::kPipe) {
      lexer_.Advance();
      operands.push_back(ParseAnd());
    }
    return operands.size() == 1 ? operands[0] : Or(std::move(operands));
  }

  Formula ParseAnd() {
    std::vector<Formula> operands{ParseQuantified()};
    while (lexer_.current().kind == TokenKind::kAmp) {
      lexer_.Advance();
      operands.push_back(ParseQuantified());
    }
    return operands.size() == 1 ? operands[0] : And(std::move(operands));
  }

  Formula ParseQuantified() {
    TokenKind kind = lexer_.current().kind;
    if (kind != TokenKind::kForall && kind != TokenKind::kExists) {
      return ParseUnary();
    }
    lexer_.Advance();
    std::vector<std::string> variables;
    while (lexer_.current().kind == TokenKind::kIdent &&
           IsVariableName(lexer_.current().text)) {
      variables.push_back(lexer_.current().text);
      lexer_.Advance();
    }
    if (variables.empty()) {
      lexer_.Fail("quantifier requires at least one variable");
    }
    if (lexer_.current().kind == TokenKind::kDot) lexer_.Advance();
    Formula body = ParseQuantified();
    return kind == TokenKind::kForall ? Forall(variables, std::move(body))
                                      : Exists(variables, std::move(body));
  }

  Formula ParseUnary() {
    if (lexer_.current().kind == TokenKind::kBang) {
      lexer_.Advance();
      return Not(ParseUnary());
    }
    return ParsePrimary();
  }

  Formula ParsePrimary() {
    const Token& token = lexer_.current();
    switch (token.kind) {
      case TokenKind::kTrue:
        lexer_.Advance();
        return True();
      case TokenKind::kFalse:
        lexer_.Advance();
        return False();
      case TokenKind::kLParen: {
        lexer_.Advance();
        Formula inner = ParseIff();
        Expect(TokenKind::kRParen, ")");
        return inner;
      }
      case TokenKind::kForall:
      case TokenKind::kExists:
        return ParseQuantified();
      case TokenKind::kIdent:
        if (IsVariableName(token.text)) {
          return ParseEqualityFrom(ParseTerm());
        }
        return ParseAtom();
      case TokenKind::kNumber:
        return ParseEqualityFrom(ParseTerm());
      default:
        lexer_.Fail("expected a formula, found '" + token.text + "'");
    }
  }

  Formula ParseAtom() {
    std::string name = lexer_.current().text;
    lexer_.Advance();
    std::vector<Term> arguments;
    if (lexer_.current().kind == TokenKind::kLParen) {
      lexer_.Advance();
      arguments.push_back(ParseTerm());
      while (lexer_.current().kind == TokenKind::kComma) {
        lexer_.Advance();
        arguments.push_back(ParseTerm());
      }
      Expect(TokenKind::kRParen, ")");
    }
    RelationId id = ResolveRelation(name, arguments.size());
    return Atom(id, std::move(arguments));
  }

  Formula ParseEqualityFrom(Term left) {
    TokenKind kind = lexer_.current().kind;
    if (kind == TokenKind::kEquals) {
      lexer_.Advance();
      return Equals(std::move(left), ParseTerm());
    }
    if (kind == TokenKind::kNotEquals) {
      lexer_.Advance();
      return Not(Equals(std::move(left), ParseTerm()));
    }
    lexer_.Fail("expected '=' or '!=' after term");
  }

  Term ParseTerm() {
    const Token& token = lexer_.current();
    if (token.kind == TokenKind::kNumber) {
      Term t = Term::Const(token.number);
      lexer_.Advance();
      return t;
    }
    if (token.kind == TokenKind::kIdent && IsVariableName(token.text)) {
      Term t = Term::Var(token.text);
      lexer_.Advance();
      return t;
    }
    lexer_.Fail("expected a term (variable or constant)");
  }

  RelationId ResolveRelation(const std::string& name, std::size_t arity) {
    if (auto id = vocabulary_->Find(name)) {
      if (vocabulary_->arity(*id) != arity) {
        lexer_.Fail("relation " + name + " used with arity " +
                         std::to_string(arity) + " but declared with arity " +
                         std::to_string(vocabulary_->arity(*id)));
      }
      return *id;
    }
    if (!allow_declare_) {
      lexer_.Fail("unknown relation " + name);
    }
    return vocabulary_->AddRelation(name, arity);
  }

  static bool IsVariableName(const std::string& name) {
    return !name.empty() &&
           (std::islower(static_cast<unsigned char>(name[0])) ||
            name[0] == '_');
  }

  void Expect(TokenKind kind, const std::string& what) {
    if (lexer_.current().kind != kind) {
      lexer_.Fail("expected '" + what + "'");
    }
    lexer_.Advance();
  }

  Lexer lexer_;
  Vocabulary* vocabulary_;
  bool allow_declare_;
};

}  // namespace

Formula Parse(std::string_view text, Vocabulary* vocabulary) {
  return Parser(text, vocabulary, /*allow_declare=*/true).ParseFormula();
}

Formula ParseStrict(std::string_view text, const Vocabulary& vocabulary) {
  // The parser never mutates when allow_declare is false.
  return Parser(text, const_cast<Vocabulary*>(&vocabulary),
                /*allow_declare=*/false)
      .ParseFormula();
}

}  // namespace swfomc::logic
