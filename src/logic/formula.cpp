#include "logic/formula.h"

#include <stdexcept>

namespace swfomc::logic {

namespace {

Formula MakeNode(FormulaKind kind, RelationId relation,
                 std::vector<Term> arguments, std::vector<Formula> children,
                 std::string variable) {
  return std::make_shared<const FormulaNode>(kind, relation,
                                             std::move(arguments),
                                             std::move(children),
                                             std::move(variable));
}

void CollectVariables(const Formula& formula, std::set<std::string>* out) {
  switch (formula->kind()) {
    case FormulaKind::kAtom:
    case FormulaKind::kEquality:
      for (const Term& t : formula->arguments()) {
        if (t.IsVariable()) out->insert(t.name);
      }
      break;
    case FormulaKind::kForall:
    case FormulaKind::kExists:
      out->insert(formula->variable());
      [[fallthrough]];
    default:
      for (const Formula& child : formula->children()) {
        CollectVariables(child, out);
      }
      break;
  }
}

void CollectFreeVariables(const Formula& formula,
                          std::set<std::string>* bound,
                          std::set<std::string>* out) {
  switch (formula->kind()) {
    case FormulaKind::kAtom:
    case FormulaKind::kEquality:
      for (const Term& t : formula->arguments()) {
        if (t.IsVariable() && !bound->contains(t.name)) out->insert(t.name);
      }
      break;
    case FormulaKind::kForall:
    case FormulaKind::kExists: {
      bool was_bound = bound->contains(formula->variable());
      bound->insert(formula->variable());
      CollectFreeVariables(formula->child(), bound, out);
      if (!was_bound) bound->erase(formula->variable());
      break;
    }
    default:
      for (const Formula& child : formula->children()) {
        CollectFreeVariables(child, bound, out);
      }
      break;
  }
}

}  // namespace

Formula True() {
  static const Formula instance =
      MakeNode(FormulaKind::kTrue, 0, {}, {}, {});
  return instance;
}

Formula False() {
  static const Formula instance =
      MakeNode(FormulaKind::kFalse, 0, {}, {}, {});
  return instance;
}

Formula Atom(RelationId relation, std::vector<Term> arguments) {
  return MakeNode(FormulaKind::kAtom, relation, std::move(arguments), {}, {});
}

Formula Equals(Term left, Term right) {
  return MakeNode(FormulaKind::kEquality, 0,
                  {std::move(left), std::move(right)}, {}, {});
}

Formula Not(Formula operand) {
  if (operand->kind() == FormulaKind::kTrue) return False();
  if (operand->kind() == FormulaKind::kFalse) return True();
  return MakeNode(FormulaKind::kNot, 0, {}, {std::move(operand)}, {});
}

Formula And(std::vector<Formula> operands) {
  std::vector<Formula> flattened;
  for (Formula& f : operands) {
    if (f->kind() == FormulaKind::kTrue) continue;
    if (f->kind() == FormulaKind::kFalse) return False();
    if (f->kind() == FormulaKind::kAnd) {
      for (const Formula& child : f->children()) flattened.push_back(child);
    } else {
      flattened.push_back(std::move(f));
    }
  }
  if (flattened.empty()) return True();
  if (flattened.size() == 1) return flattened[0];
  return MakeNode(FormulaKind::kAnd, 0, {}, std::move(flattened), {});
}

Formula And(Formula a, Formula b) {
  return And(std::vector<Formula>{std::move(a), std::move(b)});
}

Formula Or(std::vector<Formula> operands) {
  std::vector<Formula> flattened;
  for (Formula& f : operands) {
    if (f->kind() == FormulaKind::kFalse) continue;
    if (f->kind() == FormulaKind::kTrue) return True();
    if (f->kind() == FormulaKind::kOr) {
      for (const Formula& child : f->children()) flattened.push_back(child);
    } else {
      flattened.push_back(std::move(f));
    }
  }
  if (flattened.empty()) return False();
  if (flattened.size() == 1) return flattened[0];
  return MakeNode(FormulaKind::kOr, 0, {}, std::move(flattened), {});
}

Formula Or(Formula a, Formula b) {
  return Or(std::vector<Formula>{std::move(a), std::move(b)});
}

Formula Implies(Formula antecedent, Formula consequent) {
  return MakeNode(FormulaKind::kImplies, 0, {},
                  {std::move(antecedent), std::move(consequent)}, {});
}

Formula Iff(Formula a, Formula b) {
  return MakeNode(FormulaKind::kIff, 0, {}, {std::move(a), std::move(b)}, {});
}

Formula Forall(std::string variable, Formula body) {
  return MakeNode(FormulaKind::kForall, 0, {}, {std::move(body)},
                  std::move(variable));
}

Formula Exists(std::string variable, Formula body) {
  return MakeNode(FormulaKind::kExists, 0, {}, {std::move(body)},
                  std::move(variable));
}

Formula Forall(const std::vector<std::string>& variables, Formula body) {
  for (std::size_t i = variables.size(); i-- > 0;) {
    body = Forall(variables[i], std::move(body));
  }
  return body;
}

Formula Exists(const std::vector<std::string>& variables, Formula body) {
  for (std::size_t i = variables.size(); i-- > 0;) {
    body = Exists(variables[i], std::move(body));
  }
  return body;
}

Formula Forall(std::initializer_list<std::string> variables, Formula body) {
  return Forall(std::vector<std::string>(variables), std::move(body));
}

Formula Exists(std::initializer_list<std::string> variables, Formula body) {
  return Exists(std::vector<std::string>(variables), std::move(body));
}

std::set<std::string> FreeVariables(const Formula& formula) {
  std::set<std::string> bound, result;
  CollectFreeVariables(formula, &bound, &result);
  return result;
}

std::set<std::string> AllVariables(const Formula& formula) {
  std::set<std::string> result;
  CollectVariables(formula, &result);
  return result;
}

bool IsSentence(const Formula& formula) {
  return FreeVariables(formula).empty();
}

bool InFragmentFOk(const Formula& formula, std::size_t k) {
  return AllVariables(formula).size() <= k;
}

bool IsEqualityFree(const Formula& formula) {
  if (formula->kind() == FormulaKind::kEquality) return false;
  for (const Formula& child : formula->children()) {
    if (!IsEqualityFree(child)) return false;
  }
  return true;
}

void CheckArities(const Formula& formula, const Vocabulary& vocabulary) {
  if (formula->kind() == FormulaKind::kAtom) {
    if (formula->relation() >= vocabulary.size()) {
      throw std::invalid_argument("CheckArities: relation id out of range");
    }
    std::size_t expected = vocabulary.arity(formula->relation());
    if (formula->arguments().size() != expected) {
      throw std::invalid_argument(
          "CheckArities: arity mismatch for " +
          vocabulary.name(formula->relation()) + ": expected " +
          std::to_string(expected) + ", got " +
          std::to_string(formula->arguments().size()));
    }
  }
  for (const Formula& child : formula->children()) {
    CheckArities(child, vocabulary);
  }
}

bool StructurallyEqual(const Formula& a, const Formula& b) {
  if (a.get() == b.get()) return true;
  if (a->kind() != b->kind()) return false;
  if (a->relation() != b->relation()) return false;
  if (a->arguments() != b->arguments()) return false;
  if (a->variable() != b->variable()) return false;
  if (a->children().size() != b->children().size()) return false;
  for (std::size_t i = 0; i < a->children().size(); ++i) {
    if (!StructurallyEqual(a->children()[i], b->children()[i])) return false;
  }
  return true;
}

std::size_t FormulaSize(const Formula& formula) {
  std::size_t size = 1;
  for (const Formula& child : formula->children()) {
    size += FormulaSize(child);
  }
  return size;
}

}  // namespace swfomc::logic
