#ifndef SWFOMC_LOGIC_EVALUATE_H_
#define SWFOMC_LOGIC_EVALUATE_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "logic/formula.h"
#include "logic/structure.h"

namespace swfomc::logic {

/// A partial assignment of logical variables to domain elements.
using Assignment = std::unordered_map<std::string, std::uint64_t>;

/// Model checking: D |= Φ[assignment]. Quantifiers range over the
/// structure's domain. Throws std::invalid_argument when an unbound
/// variable is encountered.
bool Evaluate(const Structure& structure, const Formula& formula,
              const Assignment& assignment = {});

/// Counts the assignments a ∈ [n]^|x| of the formula's free variables x
/// under which Φ[a/x] holds in D — the MLN semantics needs this (number of
/// satisfied groundings of a soft constraint).
std::uint64_t CountSatisfiedGroundings(const Structure& structure,
                                       const Formula& formula);

}  // namespace swfomc::logic

#endif  // SWFOMC_LOGIC_EVALUATE_H_
