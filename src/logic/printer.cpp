#include "logic/printer.h"

namespace swfomc::logic {

namespace {

// Precedence levels for parenthesization, loosest binds lowest.
int Precedence(FormulaKind kind) {
  switch (kind) {
    case FormulaKind::kIff: return 1;
    case FormulaKind::kImplies: return 2;
    case FormulaKind::kOr: return 3;
    case FormulaKind::kAnd: return 4;
    case FormulaKind::kForall:
    case FormulaKind::kExists: return 5;
    case FormulaKind::kNot: return 6;
    default: return 7;
  }
}

std::string Render(const Formula& formula, const Vocabulary& vocabulary,
                   int parent_precedence) {
  int precedence = Precedence(formula->kind());
  std::string out;
  switch (formula->kind()) {
    case FormulaKind::kTrue:
      out = "true";
      break;
    case FormulaKind::kFalse:
      out = "false";
      break;
    case FormulaKind::kAtom: {
      out = vocabulary.name(formula->relation());
      if (!formula->arguments().empty()) {
        out += "(";
        for (std::size_t i = 0; i < formula->arguments().size(); ++i) {
          if (i > 0) out += ",";
          out += ToString(formula->arguments()[i]);
        }
        out += ")";
      }
      break;
    }
    case FormulaKind::kEquality:
      out = ToString(formula->arguments()[0]) + " = " +
            ToString(formula->arguments()[1]);
      break;
    case FormulaKind::kNot:
      out = "!" + Render(formula->child(), vocabulary, precedence);
      break;
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      const char* op = formula->kind() == FormulaKind::kAnd ? " & " : " | ";
      for (std::size_t i = 0; i < formula->children().size(); ++i) {
        if (i > 0) out += op;
        out += Render(formula->children()[i], vocabulary, precedence + 1);
      }
      break;
    }
    case FormulaKind::kImplies:
      out = Render(formula->child(0), vocabulary, precedence + 1) + " => " +
            Render(formula->child(1), vocabulary, precedence);
      break;
    case FormulaKind::kIff:
      out = Render(formula->child(0), vocabulary, precedence + 1) + " <=> " +
            Render(formula->child(1), vocabulary, precedence + 1);
      break;
    case FormulaKind::kForall:
    case FormulaKind::kExists: {
      const char* quantifier =
          formula->kind() == FormulaKind::kForall ? "forall " : "exists ";
      // Collapse runs of the same quantifier for readability.
      out = quantifier + formula->variable();
      Formula body = formula->child();
      while (body->kind() == formula->kind()) {
        out += " " + body->variable();
        body = body->child();
      }
      out += ". " + Render(body, vocabulary, precedence);
      break;
    }
  }
  if (precedence < parent_precedence) return "(" + out + ")";
  return out;
}

}  // namespace

std::string ToString(const Formula& formula, const Vocabulary& vocabulary) {
  return Render(formula, vocabulary, 0);
}

std::string ToString(const Term& term) {
  if (term.IsVariable()) return term.name;
  return std::to_string(term.value);
}

}  // namespace swfomc::logic
