#ifndef SWFOMC_LOGIC_PARSER_H_
#define SWFOMC_LOGIC_PARSER_H_

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>

#include "logic/formula.h"
#include "logic/vocabulary.h"

namespace swfomc::logic {

/// What Parse/ParseStrict throw on malformed input. Derives from
/// std::invalid_argument (the historical contract), additionally carrying
/// the byte offset of the offending token so embedding file formats (the
/// io module) can translate it into a file line/column.
class SyntaxError : public std::invalid_argument {
 public:
  SyntaxError(const std::string& what, std::size_t offset)
      : std::invalid_argument(what), offset_(offset) {}

  /// Byte offset into the parsed text where the error was detected.
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

/// Parses the textual FO syntax used throughout the library.
///
/// Grammar (precedence from loosest to tightest):
///
///   formula  := iff
///   iff      := implies ('<=>' implies)*
///   implies  := or ('=>' implies)?                      -- right associative
///   or       := and ('|' and)*
///   and      := quant ('&' quant)*
///   quant    := ('forall' | 'exists') var+ ('.' | ':')? quant | unary
///   unary    := '!' unary | primary
///   primary  := '(' formula ')' | 'true' | 'false' | atom | equality
///   atom     := RelName '(' term (',' term)* ')' | RelName  -- 0-ary
///   equality := term '=' term | term '!=' term
///   term     := variable | natural-number constant
///
/// Identifiers starting with an uppercase letter are relation names;
/// identifiers starting with a lowercase letter are variables. Examples:
///
///   forall x exists y. R(x,y)
///   forall x forall y (R(x) | S(x,y) | T(y))
///   exists x exists y (Spouse(x,y) & Female(x) & !Male(y))
///
/// Unknown relation symbols are added to `vocabulary` with the observed
/// arity and default weights (1, 1). A symbol used with two different
/// arities raises std::invalid_argument, as does any syntax error.
Formula Parse(std::string_view text, Vocabulary* vocabulary);

/// Parse against a read-only vocabulary; unknown relations raise.
Formula ParseStrict(std::string_view text, const Vocabulary& vocabulary);

}  // namespace swfomc::logic

#endif  // SWFOMC_LOGIC_PARSER_H_
