#include "logic/evaluate.h"

#include <set>
#include <stdexcept>
#include <vector>

namespace swfomc::logic {

namespace {

std::uint64_t ResolveTerm(const Term& term, const Assignment& assignment) {
  if (term.IsConstant()) return term.value;
  auto it = assignment.find(term.name);
  if (it == assignment.end()) {
    throw std::invalid_argument("Evaluate: unbound variable " + term.name);
  }
  return it->second;
}

bool EvaluateImpl(const Structure& structure, const Formula& formula,
                  Assignment* assignment) {
  switch (formula->kind()) {
    case FormulaKind::kTrue:
      return true;
    case FormulaKind::kFalse:
      return false;
    case FormulaKind::kAtom: {
      std::vector<std::uint64_t> args;
      args.reserve(formula->arguments().size());
      for (const Term& t : formula->arguments()) {
        args.push_back(ResolveTerm(t, *assignment));
      }
      return structure.Get(formula->relation(), args);
    }
    case FormulaKind::kEquality:
      return ResolveTerm(formula->arguments()[0], *assignment) ==
             ResolveTerm(formula->arguments()[1], *assignment);
    case FormulaKind::kNot:
      return !EvaluateImpl(structure, formula->child(), assignment);
    case FormulaKind::kAnd:
      for (const Formula& child : formula->children()) {
        if (!EvaluateImpl(structure, child, assignment)) return false;
      }
      return true;
    case FormulaKind::kOr:
      for (const Formula& child : formula->children()) {
        if (EvaluateImpl(structure, child, assignment)) return true;
      }
      return false;
    case FormulaKind::kImplies:
      return !EvaluateImpl(structure, formula->child(0), assignment) ||
             EvaluateImpl(structure, formula->child(1), assignment);
    case FormulaKind::kIff:
      return EvaluateImpl(structure, formula->child(0), assignment) ==
             EvaluateImpl(structure, formula->child(1), assignment);
    case FormulaKind::kForall:
    case FormulaKind::kExists: {
      bool is_forall = formula->kind() == FormulaKind::kForall;
      const std::string& variable = formula->variable();
      auto saved = assignment->find(variable);
      bool had_binding = saved != assignment->end();
      std::uint64_t saved_value = had_binding ? saved->second : 0;
      bool result = is_forall;
      for (std::uint64_t a = 0; a < structure.domain_size(); ++a) {
        (*assignment)[variable] = a;
        bool holds = EvaluateImpl(structure, formula->child(), assignment);
        if (is_forall && !holds) {
          result = false;
          break;
        }
        if (!is_forall && holds) {
          result = true;
          break;
        }
      }
      if (had_binding) {
        (*assignment)[variable] = saved_value;
      } else {
        assignment->erase(variable);
      }
      return result;
    }
  }
  throw std::logic_error("EvaluateImpl: unreachable");
}

}  // namespace

bool Evaluate(const Structure& structure, const Formula& formula,
              const Assignment& assignment) {
  Assignment mutable_assignment = assignment;
  return EvaluateImpl(structure, formula, &mutable_assignment);
}

std::uint64_t CountSatisfiedGroundings(const Structure& structure,
                                       const Formula& formula) {
  std::set<std::string> free_var_set = FreeVariables(formula);
  std::vector<std::string> free_vars(free_var_set.begin(),
                                     free_var_set.end());
  Assignment assignment;
  std::uint64_t count = 0;
  std::uint64_t n = structure.domain_size();
  // Odometer over [n]^|free_vars|.
  std::vector<std::uint64_t> values(free_vars.size(), 0);
  while (true) {
    for (std::size_t i = 0; i < free_vars.size(); ++i) {
      assignment[free_vars[i]] = values[i];
    }
    if (EvaluateImpl(structure, formula, &assignment)) ++count;
    // Increment odometer.
    std::size_t pos = 0;
    while (pos < values.size()) {
      if (++values[pos] < n) break;
      values[pos] = 0;
      ++pos;
    }
    if (pos == values.size()) break;
    if (values.empty()) break;
  }
  return count;
}

}  // namespace swfomc::logic
