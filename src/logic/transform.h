#ifndef SWFOMC_LOGIC_TRANSFORM_H_
#define SWFOMC_LOGIC_TRANSFORM_H_

#include <map>
#include <string>
#include <vector>

#include "logic/formula.h"

namespace swfomc::logic {

/// Replaces free occurrences of variables by terms. Substitution is
/// capture-avoiding: bound variables that would capture a substituted term
/// are renamed first.
Formula Substitute(const Formula& formula,
                   const std::map<std::string, Term>& substitution);

/// Replaces the single free variable `variable` by constant `value`.
Formula SubstituteConstant(const Formula& formula, const std::string& variable,
                           std::uint64_t value);

/// Rewrites => and <=> in terms of !, &, |.
Formula EliminateImplications(const Formula& formula);

/// Negation normal form: implications eliminated and negations pushed to
/// atoms. Quantifiers and connectives are dualized as needed.
Formula ToNNF(const Formula& formula);

/// Renames every bound variable to a fresh name "v0", "v1", ... so that no
/// two quantifiers bind the same name and no bound name collides with a
/// free variable. `counter` carries freshness across calls.
Formula RenameApart(const Formula& formula, std::size_t* counter);

/// A prenex normal form: a quantifier prefix over a quantifier-free matrix.
struct PrenexForm {
  struct QuantifiedVar {
    bool is_forall;
    std::string variable;
  };
  std::vector<QuantifiedVar> prefix;  // outermost first
  Formula matrix;
};

/// Converts to prenex normal form (after renaming apart). The matrix is in
/// NNF. Note the prefix may use more distinct variables than the input —
/// FO² algorithms must NOT go through this function (they use the Scott
/// normal form in fo2/ instead, which preserves the two-variable property).
PrenexForm ToPrenex(const Formula& formula, std::size_t* counter);

/// Reassembles a PrenexForm into a formula.
Formula FromPrenex(const PrenexForm& prenex);

/// True iff any quantifier occurs.
bool ContainsQuantifier(const Formula& formula);

/// True iff the formula (in any form) contains an existential quantifier
/// under an even number of negations or a universal under an odd number —
/// i.e., whether Skolemization (Lemma 3.3) has work to do. Assumes
/// implications have been eliminated.
bool ContainsExistentialInNNFSense(const Formula& formula);

/// Renames free occurrences of `from` to `to` (a variable renaming, not a
/// general substitution; capture-avoiding).
Formula RenameFreeVariable(const Formula& formula, const std::string& from,
                           const std::string& to);

}  // namespace swfomc::logic

#endif  // SWFOMC_LOGIC_TRANSFORM_H_
