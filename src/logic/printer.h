#ifndef SWFOMC_LOGIC_PRINTER_H_
#define SWFOMC_LOGIC_PRINTER_H_

#include <string>

#include "logic/formula.h"
#include "logic/vocabulary.h"

namespace swfomc::logic {

/// Renders the formula in the same syntax accepted by Parse, so that
/// Parse(ToString(f)) is structurally equal to f (modulo flattening).
std::string ToString(const Formula& formula, const Vocabulary& vocabulary);

/// Renders a term.
std::string ToString(const Term& term);

}  // namespace swfomc::logic

#endif  // SWFOMC_LOGIC_PRINTER_H_
