#include "logic/transform.h"

#include <stdexcept>

namespace swfomc::logic {

namespace {

// Substitution with an explicit set of names to avoid when renaming bound
// variables (the free variables of substituted terms).
Formula SubstituteImpl(const Formula& formula,
                       std::map<std::string, Term> substitution,
                       std::set<std::string>* avoid, std::size_t* counter) {
  switch (formula->kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return formula;
    case FormulaKind::kAtom:
    case FormulaKind::kEquality: {
      std::vector<Term> arguments = formula->arguments();
      bool changed = false;
      for (Term& t : arguments) {
        if (t.IsVariable()) {
          auto it = substitution.find(t.name);
          if (it != substitution.end()) {
            t = it->second;
            changed = true;
          }
        }
      }
      if (!changed) return formula;
      if (formula->kind() == FormulaKind::kAtom) {
        return Atom(formula->relation(), std::move(arguments));
      }
      return Equals(arguments[0], arguments[1]);
    }
    case FormulaKind::kForall:
    case FormulaKind::kExists: {
      std::string bound = formula->variable();
      substitution.erase(bound);
      if (substitution.empty()) return formula;
      Formula body = formula->child();
      if (avoid->contains(bound)) {
        // Rename the bound variable to avoid capture.
        std::string fresh;
        do {
          fresh = "v" + std::to_string((*counter)++);
        } while (avoid->contains(fresh));
        body = RenameFreeVariable(body, bound, fresh);
        bound = fresh;
      }
      Formula new_body =
          SubstituteImpl(body, std::move(substitution), avoid, counter);
      if (new_body.get() == formula->child().get() &&
          bound == formula->variable()) {
        return formula;
      }
      return formula->kind() == FormulaKind::kForall
                 ? Forall(bound, std::move(new_body))
                 : Exists(bound, std::move(new_body));
    }
    default: {
      std::vector<Formula> children;
      children.reserve(formula->children().size());
      bool changed = false;
      for (const Formula& child : formula->children()) {
        Formula mapped = SubstituteImpl(child, substitution, avoid, counter);
        changed |= mapped.get() != child.get();
        children.push_back(std::move(mapped));
      }
      if (!changed) return formula;
      switch (formula->kind()) {
        case FormulaKind::kNot: return Not(children[0]);
        case FormulaKind::kAnd: return And(std::move(children));
        case FormulaKind::kOr: return Or(std::move(children));
        case FormulaKind::kImplies: return Implies(children[0], children[1]);
        case FormulaKind::kIff: return Iff(children[0], children[1]);
        default: throw std::logic_error("SubstituteImpl: unreachable");
      }
    }
  }
}

Formula NNFImpl(const Formula& formula, bool negated) {
  switch (formula->kind()) {
    case FormulaKind::kTrue:
      return negated ? False() : True();
    case FormulaKind::kFalse:
      return negated ? True() : False();
    case FormulaKind::kAtom:
    case FormulaKind::kEquality:
      return negated ? Not(formula) : formula;
    case FormulaKind::kNot:
      return NNFImpl(formula->child(), !negated);
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      bool is_and = (formula->kind() == FormulaKind::kAnd) != negated;
      std::vector<Formula> children;
      children.reserve(formula->children().size());
      for (const Formula& child : formula->children()) {
        children.push_back(NNFImpl(child, negated));
      }
      return is_and ? And(std::move(children)) : Or(std::move(children));
    }
    case FormulaKind::kImplies: {
      // a => b is !a | b.
      Formula a = NNFImpl(formula->child(0), !negated);
      Formula b = NNFImpl(formula->child(1), negated);
      return negated ? And(std::move(a), std::move(b))
                     : Or(std::move(a), std::move(b));
    }
    case FormulaKind::kIff: {
      // a <=> b  is  (a & b) | (!a & !b); negated: (a & !b) | (!a & b).
      Formula a_pos = NNFImpl(formula->child(0), false);
      Formula a_neg = NNFImpl(formula->child(0), true);
      Formula b_pos = NNFImpl(formula->child(1), false);
      Formula b_neg = NNFImpl(formula->child(1), true);
      if (negated) {
        return Or(And(a_pos, b_neg), And(a_neg, b_pos));
      }
      return Or(And(a_pos, b_pos), And(a_neg, b_neg));
    }
    case FormulaKind::kForall:
    case FormulaKind::kExists: {
      bool is_forall = (formula->kind() == FormulaKind::kForall) != negated;
      Formula body = NNFImpl(formula->child(), negated);
      return is_forall ? Forall(formula->variable(), std::move(body))
                       : Exists(formula->variable(), std::move(body));
    }
  }
  throw std::logic_error("NNFImpl: unreachable");
}

}  // namespace

Formula Substitute(const Formula& formula,
                   const std::map<std::string, Term>& substitution) {
  if (substitution.empty()) return formula;
  std::set<std::string> avoid;
  for (const auto& [name, term] : substitution) {
    avoid.insert(name);
    if (term.IsVariable()) avoid.insert(term.name);
  }
  std::size_t counter = 0;
  return SubstituteImpl(formula, substitution, &avoid, &counter);
}

Formula SubstituteConstant(const Formula& formula, const std::string& variable,
                           std::uint64_t value) {
  return Substitute(formula, {{variable, Term::Const(value)}});
}

Formula RenameFreeVariable(const Formula& formula, const std::string& from,
                           const std::string& to) {
  return Substitute(formula, {{from, Term::Var(to)}});
}

Formula EliminateImplications(const Formula& formula) {
  switch (formula->kind()) {
    case FormulaKind::kImplies:
      return Or(Not(EliminateImplications(formula->child(0))),
                EliminateImplications(formula->child(1)));
    case FormulaKind::kIff: {
      Formula a = EliminateImplications(formula->child(0));
      Formula b = EliminateImplications(formula->child(1));
      return And(Or(Not(a), b), Or(Not(b), a));
    }
    case FormulaKind::kNot:
      return Not(EliminateImplications(formula->child()));
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      std::vector<Formula> children;
      for (const Formula& child : formula->children()) {
        children.push_back(EliminateImplications(child));
      }
      return formula->kind() == FormulaKind::kAnd ? And(std::move(children))
                                                  : Or(std::move(children));
    }
    case FormulaKind::kForall:
      return Forall(formula->variable(),
                    EliminateImplications(formula->child()));
    case FormulaKind::kExists:
      return Exists(formula->variable(),
                    EliminateImplications(formula->child()));
    default:
      return formula;
  }
}

Formula ToNNF(const Formula& formula) { return NNFImpl(formula, false); }

Formula RenameApart(const Formula& formula, std::size_t* counter) {
  switch (formula->kind()) {
    case FormulaKind::kForall:
    case FormulaKind::kExists: {
      std::string fresh = "v" + std::to_string((*counter)++);
      Formula body =
          RenameFreeVariable(formula->child(), formula->variable(), fresh);
      body = RenameApart(body, counter);
      return formula->kind() == FormulaKind::kForall
                 ? Forall(fresh, std::move(body))
                 : Exists(fresh, std::move(body));
    }
    case FormulaKind::kNot:
      return Not(RenameApart(formula->child(), counter));
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      std::vector<Formula> children;
      for (const Formula& child : formula->children()) {
        children.push_back(RenameApart(child, counter));
      }
      return formula->kind() == FormulaKind::kAnd ? And(std::move(children))
                                                  : Or(std::move(children));
    }
    case FormulaKind::kImplies:
      return Implies(RenameApart(formula->child(0), counter),
                     RenameApart(formula->child(1), counter));
    case FormulaKind::kIff:
      return Iff(RenameApart(formula->child(0), counter),
                 RenameApart(formula->child(1), counter));
    default:
      return formula;
  }
}

namespace {

// Pulls quantifiers out of an NNF, renamed-apart formula.
Formula PullQuantifiers(const Formula& formula,
                        std::vector<PrenexForm::QuantifiedVar>* prefix) {
  switch (formula->kind()) {
    case FormulaKind::kForall:
    case FormulaKind::kExists:
      prefix->push_back(
          {formula->kind() == FormulaKind::kForall, formula->variable()});
      return PullQuantifiers(formula->child(), prefix);
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      std::vector<Formula> children;
      for (const Formula& child : formula->children()) {
        children.push_back(PullQuantifiers(child, prefix));
      }
      return formula->kind() == FormulaKind::kAnd ? And(std::move(children))
                                                  : Or(std::move(children));
    }
    default:
      return formula;
  }
}

}  // namespace

PrenexForm ToPrenex(const Formula& formula, std::size_t* counter) {
  Formula nnf = ToNNF(formula);
  Formula renamed = RenameApart(nnf, counter);
  PrenexForm result;
  result.matrix = PullQuantifiers(renamed, &result.prefix);
  return result;
}

Formula FromPrenex(const PrenexForm& prenex) {
  Formula result = prenex.matrix;
  for (std::size_t i = prenex.prefix.size(); i-- > 0;) {
    const auto& qv = prenex.prefix[i];
    result = qv.is_forall ? Forall(qv.variable, std::move(result))
                          : Exists(qv.variable, std::move(result));
  }
  return result;
}

bool ContainsQuantifier(const Formula& formula) {
  if (formula->kind() == FormulaKind::kForall ||
      formula->kind() == FormulaKind::kExists) {
    return true;
  }
  for (const Formula& child : formula->children()) {
    if (ContainsQuantifier(child)) return true;
  }
  return false;
}

namespace {

bool ContainsExistentialImpl(const Formula& formula, bool negated) {
  switch (formula->kind()) {
    case FormulaKind::kExists:
      if (!negated) return true;
      return ContainsExistentialImpl(formula->child(), negated);
    case FormulaKind::kForall:
      if (negated) return true;
      return ContainsExistentialImpl(formula->child(), negated);
    case FormulaKind::kNot:
      return ContainsExistentialImpl(formula->child(), !negated);
    default:
      for (const Formula& child : formula->children()) {
        if (ContainsExistentialImpl(child, negated)) return true;
      }
      return false;
  }
}

}  // namespace

bool ContainsExistentialInNNFSense(const Formula& formula) {
  return ContainsExistentialImpl(formula, false);
}

}  // namespace swfomc::logic
