#ifndef SWFOMC_LOGIC_FORMULA_H_
#define SWFOMC_LOGIC_FORMULA_H_

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "logic/vocabulary.h"

namespace swfomc::logic {

/// A first-order term: either a logical variable (named) or a domain
/// constant (an element of [n] = {0, .., n-1}).
struct Term {
  enum class Kind { kVariable, kConstant };

  static Term Var(std::string name) {
    return Term{Kind::kVariable, std::move(name), 0};
  }
  static Term Const(std::uint64_t value) {
    return Term{Kind::kConstant, {}, value};
  }

  bool IsVariable() const { return kind == Kind::kVariable; }
  bool IsConstant() const { return kind == Kind::kConstant; }

  friend bool operator==(const Term& a, const Term& b) {
    return a.kind == b.kind && a.name == b.name && a.value == b.value;
  }
  friend bool operator!=(const Term& a, const Term& b) { return !(a == b); }
  friend bool operator<(const Term& a, const Term& b) {
    if (a.kind != b.kind) return a.kind < b.kind;
    if (a.name != b.name) return a.name < b.name;
    return a.value < b.value;
  }

  Kind kind;
  std::string name;     // variable name, when kind == kVariable
  std::uint64_t value;  // constant, when kind == kConstant
};

enum class FormulaKind {
  kTrue,
  kFalse,
  kAtom,      // R(t_1, .., t_k)
  kEquality,  // t_1 = t_2
  kNot,
  kAnd,  // n-ary
  kOr,   // n-ary
  kImplies,
  kIff,
  kForall,
  kExists,
};

class FormulaNode;

/// First-order formulas are immutable and shared; Formula is the handle
/// used throughout the library.
using Formula = std::shared_ptr<const FormulaNode>;

/// An immutable FO formula node over a fixed relational vocabulary with
/// equality (Section 2 of the paper). Build instances via the factory
/// functions below, never directly.
class FormulaNode {
 public:
  FormulaKind kind() const { return kind_; }

  // -- Atom accessors (kind == kAtom) --
  RelationId relation() const { return relation_; }
  const std::vector<Term>& arguments() const { return arguments_; }

  // -- Equality accessors (kind == kEquality): arguments()[0] = [1] --

  // -- Connective/quantifier accessors --
  const std::vector<Formula>& children() const { return children_; }
  const Formula& child(std::size_t i = 0) const { return children_.at(i); }
  const std::string& variable() const { return variable_; }

  // Internal constructor; use the factories.
  FormulaNode(FormulaKind kind, RelationId relation,
              std::vector<Term> arguments, std::vector<Formula> children,
              std::string variable)
      : kind_(kind),
        relation_(relation),
        arguments_(std::move(arguments)),
        children_(std::move(children)),
        variable_(std::move(variable)) {}

 private:
  FormulaKind kind_;
  RelationId relation_ = 0;
  std::vector<Term> arguments_;
  std::vector<Formula> children_;
  std::string variable_;
};

/// The constant true / false formulas.
Formula True();
Formula False();

/// Atom R(args); arity is not checked here (the parser and CheckArities
/// validate against a vocabulary).
Formula Atom(RelationId relation, std::vector<Term> arguments);
/// Equality atom t1 = t2.
Formula Equals(Term left, Term right);

/// Connectives. And/Or flatten nested conjunctions/disjunctions and apply
/// unit simplification (empty And is True, empty Or is False).
Formula Not(Formula operand);
Formula And(std::vector<Formula> operands);
Formula And(Formula a, Formula b);
Formula Or(std::vector<Formula> operands);
Formula Or(Formula a, Formula b);
Formula Implies(Formula antecedent, Formula consequent);
Formula Iff(Formula a, Formula b);

/// Quantifiers.
Formula Forall(std::string variable, Formula body);
Formula Exists(std::string variable, Formula body);
/// Forall over several variables, outermost first.
Formula Forall(const std::vector<std::string>& variables, Formula body);
Formula Exists(const std::vector<std::string>& variables, Formula body);
/// Brace-list forms: Forall({"x", "y"}, body).
Formula Forall(std::initializer_list<std::string> variables, Formula body);
Formula Exists(std::initializer_list<std::string> variables, Formula body);

/// Free variables of the formula, sorted.
std::set<std::string> FreeVariables(const Formula& formula);

/// All distinct logical variable names appearing (bound or free). The size
/// of this set bounds membership in FO^k — the paper's FO² and FO³
/// fragments count *distinct names*, with reuse allowed (Appendix B).
std::set<std::string> AllVariables(const Formula& formula);

/// True iff the formula is a sentence (no free variables).
bool IsSentence(const Formula& formula);

/// True iff the formula uses at most k distinct variable names (FO^k).
bool InFragmentFOk(const Formula& formula, std::size_t k);

/// True iff no equality atom occurs.
bool IsEqualityFree(const Formula& formula);

/// Validates that every atom's argument count matches the vocabulary
/// arity; throws std::invalid_argument on mismatch.
void CheckArities(const Formula& formula, const Vocabulary& vocabulary);

/// Structural equality (same shape, same names; not logical equivalence).
bool StructurallyEqual(const Formula& a, const Formula& b);

/// Number of nodes in the AST.
std::size_t FormulaSize(const Formula& formula);

}  // namespace swfomc::logic

#endif  // SWFOMC_LOGIC_FORMULA_H_
