#ifndef SWFOMC_LOGIC_STRUCTURE_H_
#define SWFOMC_LOGIC_STRUCTURE_H_

#include <cstdint>
#include <vector>

#include "logic/vocabulary.h"
#include "numeric/rational.h"

namespace swfomc::logic {

/// A finite relational structure (possible world) over domain [n] for a
/// fixed vocabulary. Relations are stored densely: relation R of arity k
/// owns an n^k bit table indexed in mixed radix (first argument most
/// significant). Structures are *labeled*: isomorphic structures are
/// distinct, matching the paper's counting convention.
class Structure {
 public:
  Structure(const Vocabulary& vocabulary, std::uint64_t domain_size);

  std::uint64_t domain_size() const { return domain_size_; }
  const Vocabulary& vocabulary() const { return *vocabulary_; }

  /// Truth value of the ground atom R(args). args.size() must equal the
  /// relation's arity and every value must lie in [n] (checked in debug).
  bool Get(RelationId relation, const std::vector<std::uint64_t>& args) const;
  void Set(RelationId relation, const std::vector<std::uint64_t>& args,
           bool value);

  /// Number of tuples present in a relation.
  std::uint64_t Cardinality(RelationId relation) const;

  /// Total number of ground tuples (|Tup(n)|); also the length of the flat
  /// bit representation below.
  std::uint64_t TupleCount() const { return total_bits_; }

  /// Flat addressing: every ground tuple across all relations has a unique
  /// index in [0, TupleCount()). Layout: relations in vocabulary order,
  /// tuples within a relation in mixed-radix order.
  bool GetBit(std::uint64_t flat_index) const;
  void SetBit(std::uint64_t flat_index, bool value);
  /// Overwrites all tuple bits from the low bits of `encoded` (for
  /// exhaustive world enumeration; requires TupleCount() <= 64).
  void AssignFromMask(std::uint64_t encoded);

  /// The paper's W(θ) (Eq. 3) with symmetric weights: product over present
  /// tuples of w_R and absent tuples of w̄_R.
  numeric::BigRational Weight() const;

  /// Index arithmetic exposed for the grounding module.
  std::uint64_t FlatIndex(RelationId relation,
                          const std::vector<std::uint64_t>& args) const;
  std::uint64_t RelationOffset(RelationId relation) const {
    return offsets_.at(relation);
  }
  std::uint64_t RelationBitCount(RelationId relation) const;

 private:
  const Vocabulary* vocabulary_;
  std::uint64_t domain_size_;
  std::vector<std::uint64_t> offsets_;  // flat offset of each relation
  std::uint64_t total_bits_ = 0;
  std::vector<bool> bits_;
};

}  // namespace swfomc::logic

#endif  // SWFOMC_LOGIC_STRUCTURE_H_
