#ifndef SWFOMC_GROUNDING_LINEAGE_H_
#define SWFOMC_GROUNDING_LINEAGE_H_

#include "grounding/tuple_index.h"
#include "logic/formula.h"
#include "prop/prop_formula.h"

namespace swfomc::grounding {

/// Builds the lineage F_{Φ,n} of Section 2: the propositional formula over
/// ground-tuple variables obtained by expanding quantifiers over [n]:
///
///   F_t         = variable of t            (ground atoms)
///   F_{a=b}     = true iff a == b          (ground equality)
///   F_{∃x Φ}    = ∨_{a∈[n]} F_{Φ[a/x]}
///   F_{∀x Φ}    = ∧_{a∈[n]} F_{Φ[a/x]}
///
/// For a fixed sentence, the lineage size is polynomial in n (O(n^d) for
/// quantifier depth d). The formula need not be a sentence: free variables
/// must be bound by `assignment` before grounding. Implications are
/// expanded; the result uses only {var, !, &, |} plus constants.
prop::PropFormula GroundLineage(const logic::Formula& formula,
                                const TupleIndex& index);

}  // namespace swfomc::grounding

#endif  // SWFOMC_GROUNDING_LINEAGE_H_
