#ifndef SWFOMC_GROUNDING_UNLABELED_H_
#define SWFOMC_GROUNDING_UNLABELED_H_

#include <cstdint>

#include "logic/formula.h"
#include "logic/vocabulary.h"
#include "numeric/bigint.h"

namespace swfomc::grounding {

/// Unlabeled FO model counting, UFOMC(Φ, n): models counted up to
/// isomorphism (Section 3.3 remarks that #P₁ = {UFOMC(Φ, n) | Φ ∈ FO},
/// tightening the labeled correspondence FOMC(Θ₁, n) = n!·#accepting).
///
/// Computed by Burnside's lemma over the symmetric group S_n:
///
///   UFOMC(Φ, n) = (1/n!) · Σ_{π ∈ S_n} #{D |= Φ : π(D) = D}
///
/// with the fixed structures of each permutation counted by exhaustive
/// enumeration over the π-orbits of ground tuples (a structure is fixed
/// by π iff it is constant on every orbit, so there are 2^#orbits
/// candidates per permutation). Exponential by nature — a reference
/// implementation for small n, like ExhaustiveWFOMC. Requires the orbit
/// count to stay ≤ 26 and n ≤ 8.
numeric::BigInt UnlabeledFOMC(const logic::Formula& sentence,
                              const logic::Vocabulary& vocabulary,
                              std::uint64_t domain_size);

/// Number of π-fixed models of Φ for one permutation π of [n] (exposed
/// for tests; π is given as the image table π[i]).
numeric::BigInt CountFixedModels(const logic::Formula& sentence,
                                 const logic::Vocabulary& vocabulary,
                                 const std::vector<std::uint64_t>& pi);

}  // namespace swfomc::grounding

#endif  // SWFOMC_GROUNDING_UNLABELED_H_
