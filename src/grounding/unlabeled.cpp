#include "grounding/unlabeled.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "grounding/tuple_index.h"
#include "logic/evaluate.h"
#include "logic/structure.h"
#include "numeric/combinatorics.h"

namespace swfomc::grounding {

namespace {

// Orbits of ground tuples under the permutation π acting coordinatewise:
// π · R(a₁..a_k) = R(π(a₁)..π(a_k)). Returns, for each flat tuple index,
// its orbit id, plus the orbit count.
struct TupleOrbits {
  std::vector<std::size_t> orbit_of;
  std::size_t count = 0;
};

TupleOrbits ComputeOrbits(const TupleIndex& index,
                          const std::vector<std::uint64_t>& pi) {
  std::uint64_t total = index.TupleCount();
  TupleOrbits orbits;
  orbits.orbit_of.assign(total, SIZE_MAX);
  for (std::uint64_t start = 0; start < total; ++start) {
    if (orbits.orbit_of[start] != SIZE_MAX) continue;
    std::size_t id = orbits.count++;
    std::uint64_t current = start;
    // Follow the cycle of π's action on this tuple.
    while (orbits.orbit_of[current] == SIZE_MAX) {
      orbits.orbit_of[current] = id;
      TupleIndex::GroundAtom atom =
          index.AtomOf(static_cast<prop::VarId>(current));
      for (std::uint64_t& argument : atom.args) {
        argument = pi[argument];
      }
      current = index.VariableOf(atom.relation, atom.args);
    }
  }
  return orbits;
}

}  // namespace

numeric::BigInt CountFixedModels(const logic::Formula& sentence,
                                 const logic::Vocabulary& vocabulary,
                                 const std::vector<std::uint64_t>& pi) {
  std::uint64_t n = pi.size();
  TupleIndex index(vocabulary, n);
  TupleOrbits orbits = ComputeOrbits(index, pi);
  if (orbits.count > 26) {
    throw std::invalid_argument(
        "CountFixedModels: refusing to enumerate 2^" +
        std::to_string(orbits.count) + " orbit assignments");
  }
  numeric::BigInt fixed_models(0);
  logic::Structure structure(vocabulary, n);
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << orbits.count);
       ++mask) {
    for (std::uint64_t bit = 0; bit < index.TupleCount(); ++bit) {
      structure.SetBit(bit, (mask >> orbits.orbit_of[bit]) & 1);
    }
    if (logic::Evaluate(structure, sentence)) {
      fixed_models += numeric::BigInt(1);
    }
  }
  return fixed_models;
}

numeric::BigInt UnlabeledFOMC(const logic::Formula& sentence,
                              const logic::Vocabulary& vocabulary,
                              std::uint64_t domain_size) {
  if (domain_size > 8) {
    throw std::invalid_argument(
        "UnlabeledFOMC: reference implementation caps n at 8 (n! "
        "permutations)");
  }
  std::vector<std::uint64_t> pi(domain_size);
  std::iota(pi.begin(), pi.end(), 0);
  numeric::BigInt total(0);
  do {
    total += CountFixedModels(sentence, vocabulary, pi);
  } while (std::next_permutation(pi.begin(), pi.end()));

  numeric::BigInt quotient, remainder;
  numeric::BigInt::DivMod(total, numeric::Factorial(domain_size), &quotient,
                          &remainder);
  if (!remainder.IsZero()) {
    throw std::logic_error(
        "UnlabeledFOMC: Burnside sum not divisible by n!");
  }
  return quotient;
}

}  // namespace swfomc::grounding
