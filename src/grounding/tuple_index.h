#ifndef SWFOMC_GROUNDING_TUPLE_INDEX_H_
#define SWFOMC_GROUNDING_TUPLE_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "logic/vocabulary.h"
#include "prop/prop_formula.h"

namespace swfomc::grounding {

/// Bijection between ground tuples Tup(n) and propositional variable ids.
/// Layout matches logic::Structure: relations in vocabulary order, tuples
/// within a relation in mixed-radix order with the first argument most
/// significant. |Tup(n)| = Σ_i n^{arity(R_i)}.
class TupleIndex {
 public:
  TupleIndex(const logic::Vocabulary& vocabulary, std::uint64_t domain_size);

  std::uint64_t domain_size() const { return domain_size_; }
  const logic::Vocabulary& vocabulary() const { return *vocabulary_; }

  /// Total number of ground tuples.
  std::uint64_t TupleCount() const { return total_; }

  /// Variable id of the ground atom R(args).
  prop::VarId VariableOf(logic::RelationId relation,
                         const std::vector<std::uint64_t>& args) const;

  /// Inverse mapping.
  struct GroundAtom {
    logic::RelationId relation;
    std::vector<std::uint64_t> args;
  };
  GroundAtom AtomOf(prop::VarId variable) const;

  /// Pretty name like "R(0,2)" for diagnostics.
  std::string NameOf(prop::VarId variable) const;

 private:
  const logic::Vocabulary* vocabulary_;
  std::uint64_t domain_size_;
  std::vector<std::uint64_t> offsets_;
  std::uint64_t total_ = 0;
};

}  // namespace swfomc::grounding

#endif  // SWFOMC_GROUNDING_TUPLE_INDEX_H_
