#ifndef SWFOMC_GROUNDING_GROUNDED_WFOMC_H_
#define SWFOMC_GROUNDING_GROUNDED_WFOMC_H_

#include <functional>

#include "grounding/tuple_index.h"
#include "logic/formula.h"
#include "numeric/rational.h"
#include "wmc/dpll_counter.h"

namespace swfomc::grounding {

/// The symmetric weight table of a grounded instance: ground tuple
/// variables carry their relation's (w, w̄) from the vocabulary, the
/// remaining (Tseitin auxiliary) variables up to `total_vars` carry
/// (1, 1). Shared by GroundedWFOMC and the knowledge-compilation path,
/// which must reproduce the exact same variable weighting.
wmc::WeightMap SymmetricGroundWeights(const TupleIndex& index,
                                      std::uint32_t total_vars);

/// Symmetric WFOMC by grounding: builds the lineage F_{Φ,n}, Tseitin-
/// encodes it, assigns every ground tuple of relation R_i the weights
/// (w_i, w̄_i) from the vocabulary, and runs the DPLL counter. Works for
/// every FO sentence; worst-case exponential in n (this is the baseline
/// the lifted algorithms are measured against).
numeric::BigRational GroundedWFOMC(const logic::Formula& sentence,
                                   const logic::Vocabulary& vocabulary,
                                   std::uint64_t domain_size,
                                   wmc::DpllCounter::Options options = {},
                                   wmc::DpllCounter::Stats* stats = nullptr);

/// Resource-governed GroundedWFOMC: same pipeline, but a budget, cancel
/// token, or fault point in `options` can stop the search early, in which
/// case the result carries certified anytime bounds (or kAborted) instead
/// of throwing. Ungoverned options make this identical to GroundedWFOMC.
wmc::DpllCounter::CountResult GroundedWFOMCBounded(
    const logic::Formula& sentence, const logic::Vocabulary& vocabulary,
    std::uint64_t domain_size, wmc::DpllCounter::Options options = {},
    wmc::DpllCounter::Stats* stats = nullptr);

/// Unweighted model count FOMC(Φ, n): GroundedWFOMC with weights (1, 1);
/// the result is always a non-negative integer.
numeric::BigInt GroundedFOMC(const logic::Formula& sentence,
                             const logic::Vocabulary& vocabulary,
                             std::uint64_t domain_size);

/// *Asymmetric* WFOMC: per-ground-tuple weights supplied by a callback
/// (variable id -> weights). This is the "Asymmetric WFOMC" row of
/// Table 1, which is #P-hard in general.
numeric::BigRational GroundedWFOMCAsymmetric(
    const logic::Formula& sentence, const logic::Vocabulary& vocabulary,
    std::uint64_t domain_size,
    const std::function<wmc::VariableWeights(const TupleIndex&, prop::VarId)>&
        tuple_weights);

/// Reference implementation by exhaustive world enumeration (2^|Tup(n)|
/// structures, evaluated with the FO model checker). Requires
/// |Tup(n)| <= 26. Ground truth for everything else.
numeric::BigRational ExhaustiveWFOMC(const logic::Formula& sentence,
                                     const logic::Vocabulary& vocabulary,
                                     std::uint64_t domain_size);

/// Exhaustive unweighted count.
numeric::BigInt ExhaustiveFOMC(const logic::Formula& sentence,
                               const logic::Vocabulary& vocabulary,
                               std::uint64_t domain_size);

/// Pr(Φ) over the symmetric tuple-independent distribution induced by the
/// vocabulary weights: WFOMC(Φ,n,w,w̄) / WFOMC(true,n,w,w̄). Throws
/// std::domain_error when the normalizer is zero.
numeric::BigRational GroundedProbability(const logic::Formula& sentence,
                                         const logic::Vocabulary& vocabulary,
                                         std::uint64_t domain_size);

}  // namespace swfomc::grounding

#endif  // SWFOMC_GROUNDING_GROUNDED_WFOMC_H_
