#include "grounding/grounded_wfomc.h"

#include <stdexcept>

#include "grounding/lineage.h"
#include "logic/evaluate.h"
#include "logic/structure.h"
#include "prop/tseitin.h"

namespace swfomc::grounding {

namespace {

using numeric::BigRational;

}  // namespace

wmc::WeightMap SymmetricGroundWeights(const TupleIndex& index,
                                      std::uint32_t total_vars) {
  wmc::WeightMap weights(total_vars);
  for (prop::VarId v = 0; v < index.TupleCount(); ++v) {
    TupleIndex::GroundAtom atom = index.AtomOf(v);
    weights.Set(v, index.vocabulary().positive_weight(atom.relation),
                index.vocabulary().negative_weight(atom.relation));
  }
  return weights;
}

numeric::BigRational GroundedWFOMC(const logic::Formula& sentence,
                                   const logic::Vocabulary& vocabulary,
                                   std::uint64_t domain_size,
                                   wmc::DpllCounter::Options options,
                                   wmc::DpllCounter::Stats* stats) {
  TupleIndex index(vocabulary, domain_size);
  prop::PropFormula lineage = GroundLineage(sentence, index);
  prop::TseitinResult tseitin = prop::TseitinTransform(
      lineage, static_cast<std::uint32_t>(index.TupleCount()));
  wmc::WeightMap weights =
      SymmetricGroundWeights(index, tseitin.cnf.variable_count);
  wmc::DpllCounter counter(std::move(tseitin.cnf), std::move(weights),
                           options);
  BigRational result = counter.Count();
  if (stats != nullptr) *stats = counter.stats();
  return result;
}

wmc::DpllCounter::CountResult GroundedWFOMCBounded(
    const logic::Formula& sentence, const logic::Vocabulary& vocabulary,
    std::uint64_t domain_size, wmc::DpllCounter::Options options,
    wmc::DpllCounter::Stats* stats) {
  TupleIndex index(vocabulary, domain_size);
  prop::PropFormula lineage = GroundLineage(sentence, index);
  prop::TseitinResult tseitin = prop::TseitinTransform(
      lineage, static_cast<std::uint32_t>(index.TupleCount()));
  wmc::WeightMap weights =
      SymmetricGroundWeights(index, tseitin.cnf.variable_count);
  wmc::DpllCounter counter(std::move(tseitin.cnf), std::move(weights),
                           options);
  wmc::DpllCounter::CountResult result = counter.CountBounded();
  if (stats != nullptr) *stats = counter.stats();
  return result;
}

numeric::BigInt GroundedFOMC(const logic::Formula& sentence,
                             const logic::Vocabulary& vocabulary,
                             std::uint64_t domain_size) {
  // Force weights (1,1) regardless of what the vocabulary carries.
  logic::Vocabulary unweighted = vocabulary;
  for (logic::RelationId id = 0; id < unweighted.size(); ++id) {
    unweighted.SetWeights(id, 1, 1);
  }
  BigRational count = GroundedWFOMC(sentence, unweighted, domain_size);
  return count.ToInteger();
}

numeric::BigRational GroundedWFOMCAsymmetric(
    const logic::Formula& sentence, const logic::Vocabulary& vocabulary,
    std::uint64_t domain_size,
    const std::function<wmc::VariableWeights(const TupleIndex&, prop::VarId)>&
        tuple_weights) {
  TupleIndex index(vocabulary, domain_size);
  prop::PropFormula lineage = GroundLineage(sentence, index);
  prop::TseitinResult tseitin = prop::TseitinTransform(
      lineage, static_cast<std::uint32_t>(index.TupleCount()));
  wmc::WeightMap weights(tseitin.cnf.variable_count);
  for (prop::VarId v = 0; v < index.TupleCount(); ++v) {
    wmc::VariableWeights w = tuple_weights(index, v);
    weights.Set(v, std::move(w.positive), std::move(w.negative));
  }
  wmc::DpllCounter counter(std::move(tseitin.cnf), std::move(weights));
  return counter.Count();
}

numeric::BigRational ExhaustiveWFOMC(const logic::Formula& sentence,
                                     const logic::Vocabulary& vocabulary,
                                     std::uint64_t domain_size) {
  logic::Structure structure(vocabulary, domain_size);
  if (structure.TupleCount() > 26) {
    throw std::invalid_argument(
        "ExhaustiveWFOMC: refusing to enumerate 2^" +
        std::to_string(structure.TupleCount()) + " worlds");
  }
  BigRational total;
  std::uint64_t limit = 1ULL << structure.TupleCount();
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    structure.AssignFromMask(mask);
    if (logic::Evaluate(structure, sentence)) {
      total += structure.Weight();
    }
  }
  return total;
}

numeric::BigInt ExhaustiveFOMC(const logic::Formula& sentence,
                               const logic::Vocabulary& vocabulary,
                               std::uint64_t domain_size) {
  logic::Vocabulary unweighted = vocabulary;
  for (logic::RelationId id = 0; id < unweighted.size(); ++id) {
    unweighted.SetWeights(id, 1, 1);
  }
  return ExhaustiveWFOMC(sentence, unweighted, domain_size).ToInteger();
}

numeric::BigRational GroundedProbability(const logic::Formula& sentence,
                                         const logic::Vocabulary& vocabulary,
                                         std::uint64_t domain_size) {
  BigRational numerator = GroundedWFOMC(sentence, vocabulary, domain_size);
  // WFOMC(true, n, w, w̄) = Π_tuples (w + w̄).
  BigRational normalizer(1);
  for (logic::RelationId id = 0; id < vocabulary.size(); ++id) {
    std::uint64_t tuples = 1;
    for (std::size_t i = 0; i < vocabulary.arity(id); ++i) {
      tuples *= domain_size;
    }
    BigRational total =
        vocabulary.positive_weight(id) + vocabulary.negative_weight(id);
    normalizer *= BigRational::Pow(total, static_cast<std::int64_t>(tuples));
  }
  if (normalizer.IsZero()) {
    throw std::domain_error("GroundedProbability: zero normalizer");
  }
  return numerator / normalizer;
}

}  // namespace swfomc::grounding
