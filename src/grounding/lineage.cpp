#include "grounding/lineage.h"

#include <stdexcept>
#include <unordered_map>

namespace swfomc::grounding {

namespace {

using Env = std::unordered_map<std::string, std::uint64_t>;

std::uint64_t Resolve(const logic::Term& term, const Env& env) {
  if (term.IsConstant()) return term.value;
  auto it = env.find(term.name);
  if (it == env.end()) {
    throw std::invalid_argument("GroundLineage: unbound variable " +
                                term.name);
  }
  return it->second;
}

prop::PropFormula Ground(const logic::Formula& formula,
                         const TupleIndex& index, Env* env, bool negated) {
  using logic::FormulaKind;
  switch (formula->kind()) {
    case FormulaKind::kTrue:
      return negated ? prop::PropFalse() : prop::PropTrue();
    case FormulaKind::kFalse:
      return negated ? prop::PropTrue() : prop::PropFalse();
    case FormulaKind::kAtom: {
      std::vector<std::uint64_t> args;
      args.reserve(formula->arguments().size());
      for (const logic::Term& t : formula->arguments()) {
        args.push_back(Resolve(t, *env));
      }
      prop::PropFormula var =
          prop::PropVar(index.VariableOf(formula->relation(), args));
      return negated ? prop::PropNot(std::move(var)) : var;
    }
    case FormulaKind::kEquality: {
      bool equal = Resolve(formula->arguments()[0], *env) ==
                   Resolve(formula->arguments()[1], *env);
      return equal != negated ? prop::PropTrue() : prop::PropFalse();
    }
    case FormulaKind::kNot:
      return Ground(formula->child(), index, env, !negated);
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      bool is_and = (formula->kind() == FormulaKind::kAnd) != negated;
      std::vector<prop::PropFormula> children;
      children.reserve(formula->children().size());
      for (const logic::Formula& child : formula->children()) {
        children.push_back(Ground(child, index, env, negated));
      }
      return is_and ? prop::PropAnd(std::move(children))
                    : prop::PropOr(std::move(children));
    }
    case FormulaKind::kImplies: {
      prop::PropFormula a = Ground(formula->child(0), index, env, !negated);
      prop::PropFormula b = Ground(formula->child(1), index, env, negated);
      return negated ? prop::PropAnd(std::move(a), std::move(b))
                     : prop::PropOr(std::move(a), std::move(b));
    }
    case FormulaKind::kIff: {
      prop::PropFormula a_pos = Ground(formula->child(0), index, env, false);
      prop::PropFormula a_neg = Ground(formula->child(0), index, env, true);
      prop::PropFormula b_pos = Ground(formula->child(1), index, env, false);
      prop::PropFormula b_neg = Ground(formula->child(1), index, env, true);
      if (negated) {
        return prop::PropOr(prop::PropAnd(a_pos, b_neg),
                            prop::PropAnd(a_neg, b_pos));
      }
      return prop::PropOr(prop::PropAnd(a_pos, b_pos),
                          prop::PropAnd(a_neg, b_neg));
    }
    case FormulaKind::kForall:
    case FormulaKind::kExists: {
      bool is_and = (formula->kind() == FormulaKind::kForall) != negated;
      const std::string& variable = formula->variable();
      auto saved = env->find(variable);
      bool had_binding = saved != env->end();
      std::uint64_t saved_value = had_binding ? saved->second : 0;
      std::vector<prop::PropFormula> children;
      children.reserve(index.domain_size());
      for (std::uint64_t a = 0; a < index.domain_size(); ++a) {
        (*env)[variable] = a;
        children.push_back(Ground(formula->child(), index, env, negated));
      }
      if (had_binding) {
        (*env)[variable] = saved_value;
      } else {
        env->erase(variable);
      }
      return is_and ? prop::PropAnd(std::move(children))
                    : prop::PropOr(std::move(children));
    }
  }
  throw std::logic_error("GroundLineage: unreachable");
}

}  // namespace

prop::PropFormula GroundLineage(const logic::Formula& formula,
                                const TupleIndex& index) {
  Env env;
  return Ground(formula, index, &env, false);
}

}  // namespace swfomc::grounding
