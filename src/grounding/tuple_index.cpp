#include "grounding/tuple_index.h"

#include <cassert>
#include <stdexcept>

namespace swfomc::grounding {

TupleIndex::TupleIndex(const logic::Vocabulary& vocabulary,
                       std::uint64_t domain_size)
    : vocabulary_(&vocabulary), domain_size_(domain_size) {
  offsets_.reserve(vocabulary.size());
  for (logic::RelationId id = 0; id < vocabulary.size(); ++id) {
    offsets_.push_back(total_);
    std::uint64_t count = 1;
    for (std::size_t i = 0; i < vocabulary.arity(id); ++i) {
      count *= domain_size_;
    }
    total_ += count;
  }
  if (total_ > 0xFFFFFFFFull) {
    throw std::invalid_argument("TupleIndex: too many ground tuples");
  }
}

prop::VarId TupleIndex::VariableOf(
    logic::RelationId relation, const std::vector<std::uint64_t>& args) const {
  assert(args.size() == vocabulary_->arity(relation));
  std::uint64_t index = 0;
  for (std::uint64_t a : args) {
    assert(a < domain_size_);
    index = index * domain_size_ + a;
  }
  return static_cast<prop::VarId>(offsets_[relation] + index);
}

TupleIndex::GroundAtom TupleIndex::AtomOf(prop::VarId variable) const {
  std::uint64_t flat = variable;
  logic::RelationId relation = 0;
  for (logic::RelationId id = vocabulary_->size(); id-- > 0;) {
    if (offsets_[id] <= flat) {
      relation = id;
      break;
    }
  }
  std::uint64_t index = flat - offsets_[relation];
  std::size_t arity = vocabulary_->arity(relation);
  std::vector<std::uint64_t> args(arity, 0);
  for (std::size_t i = arity; i-- > 0;) {
    args[i] = index % domain_size_;
    index /= domain_size_;
  }
  return GroundAtom{relation, std::move(args)};
}

std::string TupleIndex::NameOf(prop::VarId variable) const {
  GroundAtom atom = AtomOf(variable);
  std::string out = vocabulary_->name(atom.relation);
  if (!atom.args.empty()) {
    out += "(";
    for (std::size_t i = 0; i < atom.args.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(atom.args[i]);
    }
    out += ")";
  }
  return out;
}

}  // namespace swfomc::grounding
