#include "qs4/qs4.h"

#include "logic/parser.h"
#include "numeric/combinatorics.h"

namespace swfomc::qs4 {

using numeric::BigRational;

Qs4Solver::Qs4Solver(numeric::BigRational positive_weight,
                     numeric::BigRational negative_weight)
    : w_(std::move(positive_weight)), w_bar_(std::move(negative_weight)) {}

numeric::BigRational Qs4Solver::WFOMC(std::uint64_t domain_size) {
  return GeneralizedWFOMC(domain_size, domain_size);
}

numeric::BigRational Qs4Solver::GeneralizedWFOMC(std::uint64_t n1,
                                                 std::uint64_t n2) {
  if (n1 == 0 && n2 == 0) return BigRational(1);  // the empty structure
  return F(n1, n2) + G(n1, n2);
}

numeric::BigRational Qs4Solver::F(std::uint64_t n1, std::uint64_t n2) {
  if (n2 == 0) return BigRational(1);  // Pa vacuous over y, no tuples
  if (n1 == 0) return BigRational(0);  // Pa needs a witness row
  auto key = std::make_pair(n1, n2);
  auto it = f_.find(key);
  if (it != f_.end()) return it->second;
  BigRational result;
  for (std::uint64_t k = 1; k <= n1; ++k) {
    BigRational term(binomials_.Get(n1, k));
    term *= BigRational::Pow(w_, static_cast<std::int64_t>(k * n2));
    term *= G(n1 - k, n2);
    result += term;
  }
  f_.emplace(key, result);
  return result;
}

numeric::BigRational Qs4Solver::G(std::uint64_t n1, std::uint64_t n2) {
  if (n1 == 0) return BigRational(1);  // Pb vacuous over x, no tuples
  if (n2 == 0) return BigRational(0);  // Pb needs a witness column
  auto key = std::make_pair(n1, n2);
  auto it = g_.find(key);
  if (it != g_.end()) return it->second;
  BigRational result;
  for (std::uint64_t l = 1; l <= n2; ++l) {
    BigRational term(binomials_.Get(n2, l));
    term *= BigRational::Pow(w_bar_, static_cast<std::int64_t>(n1 * l));
    term *= F(n1, n2 - l);
    result += term;
  }
  g_.emplace(key, result);
  return result;
}

logic::Formula Qs4Sentence(const logic::Vocabulary& vocabulary) {
  return logic::ParseStrict(
      "forall x1 forall x2 forall y1 forall y2 "
      "(S(x1,y1) | !S(x2,y1) | S(x2,y2) | !S(x1,y2))",
      vocabulary);
}

logic::Vocabulary Qs4Vocabulary(numeric::BigRational positive_weight,
                                numeric::BigRational negative_weight) {
  logic::Vocabulary vocab;
  vocab.AddRelation("S", 2, std::move(positive_weight),
                    std::move(negative_weight));
  return vocab;
}

}  // namespace swfomc::qs4
