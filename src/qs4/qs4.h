#ifndef SWFOMC_QS4_QS4_H_
#define SWFOMC_QS4_QS4_H_

#include <cstdint>
#include <map>

#include "logic/formula.h"
#include "logic/vocabulary.h"
#include "numeric/combinatorics.h"
#include "numeric/rational.h"

namespace swfomc::qs4 {

/// Theorem 3.7: the symmetric WFOMC of
///
///   QS4 = ∀x1 ∀x2 ∀y1 ∀y2 (S(x1,y1) ∨ ¬S(x2,y1) ∨ S(x2,y2) ∨ ¬S(x1,y2))
///
/// is computable in PTIME by a dynamic program that none of the standard
/// lifted-inference rules derive. Every model satisfies exactly one of
///   Pa ≡ ∃x ∀y S(x,y)    (a row full of S)
///   Pb ≡ ∃y ∀x ¬S(x,y)   (a column empty of S)
/// and the DP recurses on the generalized counts f(n1,n2) (models of
/// Q_{n1,n2} ∧ Pa) and g(n1,n2) (models of Q_{n1,n2} ∧ Pb):
///
///   f(n1,0) = 1   f(n1,n2) = Σ_{k=1..n1} C(n1,k) w^{k n2} g(n1-k, n2)
///   g(0,n2) = 1   g(n1,n2) = Σ_{l=1..n2} C(n2,l) w̄^{n1 l} f(n1, n2-l)
///
/// where (w, w̄) are the weights of S-tuples.
class Qs4Solver {
 public:
  Qs4Solver(numeric::BigRational positive_weight,
            numeric::BigRational negative_weight);

  /// WFOMC(QS4, n, w, w̄) = f(n,n) + g(n,n) for n >= 1; 1 for n = 0.
  numeric::BigRational WFOMC(std::uint64_t domain_size);

  /// The generalized count over separate row/column domains [n1] x [n2]
  /// (the paper's Q_{n1,n2}).
  numeric::BigRational GeneralizedWFOMC(std::uint64_t n1, std::uint64_t n2);

 private:
  numeric::BigRational F(std::uint64_t n1, std::uint64_t n2);
  numeric::BigRational G(std::uint64_t n1, std::uint64_t n2);

  numeric::BigRational w_;
  numeric::BigRational w_bar_;
  std::map<std::pair<std::uint64_t, std::uint64_t>, numeric::BigRational> f_;
  std::map<std::pair<std::uint64_t, std::uint64_t>, numeric::BigRational> g_;
  numeric::BinomialTable binomials_;
};

/// The QS4 sentence itself over a vocabulary containing binary S (for
/// cross-validation against the grounded engine; QS4 is FO4, outside the
/// lifted FO² fragment).
logic::Formula Qs4Sentence(const logic::Vocabulary& vocabulary);

/// Builds a vocabulary with just S weighted (w, w̄).
logic::Vocabulary Qs4Vocabulary(numeric::BigRational positive_weight,
                                numeric::BigRational negative_weight);

}  // namespace swfomc::qs4

#endif  // SWFOMC_QS4_QS4_H_
