// E9 — Examples 1.1 / 1.2: Markov Logic Network inference via symmetric
// WFOMC.
//
// The paper's practical motivation: a soft constraint (w, ϕ) becomes a
// hard constraint ∀x⃗ (R(x⃗) ∨ ϕ(x⃗)) plus a fresh relation R with weight
// 1/(w-1) (negative when w < 1), after which Pr_MLN(Φ) = Pr(Φ | Γ) over a
// symmetric tuple-independent database. The bench runs the paper's
// Spouse/Female/Male MLN and checks the reduction against exact
// brute-force MLN semantics, then shows the scaling split between the
// brute-force world enumeration and the WFOMC path.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "logic/parser.h"
#include "mln/mln.h"
#include "mln/reduction.h"

namespace {

using swfomc::numeric::BigRational;

// The paper's Example 1.1 network: (3, Spouse(x,y) & Female(x) =>
// Male(y)) over unary Female/Male and binary Spouse.
swfomc::mln::MarkovLogicNetwork SpouseNetwork() {
  swfomc::logic::Vocabulary vocab;
  vocab.AddRelation("Spouse", 2);
  vocab.AddRelation("Female", 1);
  vocab.AddRelation("Male", 1);
  swfomc::mln::MarkovLogicNetwork network(std::move(vocab));
  network.AddSoft(BigRational(3),
                  "(Spouse(x,y) & Female(x)) -> Male(y)");
  return network;
}

// A network exercising w < 1 (negative auxiliary weight in the
// reduction).
swfomc::mln::MarkovLogicNetwork FractionalNetwork() {
  swfomc::logic::Vocabulary vocab;
  vocab.AddRelation("Friends", 2);
  vocab.AddRelation("Smokes", 1);
  swfomc::mln::MarkovLogicNetwork network(std::move(vocab));
  network.AddSoft(BigRational::Fraction(1, 2),
                  "(Friends(x,y) & Smokes(x)) -> Smokes(y)");
  network.AddHard("forall x !Friends(x,x)");
  return network;
}

void PrintRow(const char* name, swfomc::mln::MarkovLogicNetwork& network,
              const char* query_text, std::uint64_t max_brute_n,
              std::uint64_t max_wfomc_n) {
  swfomc::logic::Formula query = swfomc::logic::ParseStrict(
      query_text, *network.mutable_vocabulary());
  for (std::uint64_t n = 1; n <= max_wfomc_n; ++n) {
    BigRational via_wfomc =
        swfomc::mln::ProbabilityViaWFOMC(network, query, n);
    std::string brute = "(skipped)";
    const char* check = "";
    if (n <= max_brute_n) {
      BigRational reference = network.BruteForceProbability(query, n);
      brute = reference.ToString();
      check = reference == via_wfomc ? "OK" : "MISMATCH";
    }
    std::printf("%-12s %-26s %2llu  %-22s %-22s %s\n", name, query_text,
                static_cast<unsigned long long>(n),
                via_wfomc.ToString().c_str(), brute.c_str(), check);
  }
}

void PrintTable() {
  std::printf("== Example 1.2: MLN inference via symmetric WFOMC ==\n\n");
  std::printf("%-12s %-26s %2s  %-22s %-22s %s\n", "network", "query", "n",
              "Pr via WFOMC", "Pr brute force", "check");
  swfomc::mln::MarkovLogicNetwork spouse = SpouseNetwork();
  PrintRow("spouse", spouse, "exists x Female(x)", 2, 3);
  PrintRow("spouse", spouse, "forall x exists y Spouse(x,y)", 2, 3);
  swfomc::mln::MarkovLogicNetwork fractional = FractionalNetwork();
  PrintRow("smokers", fractional, "exists x Smokes(x)", 2, 3);
  std::printf(
      "\nThe reduction introduces one auxiliary relation per soft\n"
      "constraint with weight 1/(w-1): w=3 gives 1/2, w=1/2 gives -2 —\n"
      "the negative-weight case the paper highlights. Brute force\n"
      "enumerates 2^|Tup(n)| worlds; the WFOMC path only grounds Γ.\n\n");
}

void BM_Mln_BruteForce(benchmark::State& state) {
  std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  swfomc::mln::MarkovLogicNetwork network = SpouseNetwork();
  swfomc::logic::Formula query = swfomc::logic::ParseStrict(
      "exists x Female(x)", *network.mutable_vocabulary());
  for (auto _ : state) {
    benchmark::DoNotOptimize(network.BruteForceProbability(query, n));
  }
}
BENCHMARK(BM_Mln_BruteForce)->Arg(1)->Arg(2);

void BM_Mln_ViaWFOMC(benchmark::State& state) {
  std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  swfomc::mln::MarkovLogicNetwork network = SpouseNetwork();
  swfomc::logic::Formula query = swfomc::logic::ParseStrict(
      "exists x Female(x)", *network.mutable_vocabulary());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        swfomc::mln::ProbabilityViaWFOMC(network, query, n));
  }
}
BENCHMARK(BM_Mln_ViaWFOMC)->Arg(1)->Arg(2)->Arg(3);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
