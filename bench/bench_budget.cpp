// Resource-governance overhead — the cost of being stoppable.
//
// A governed search pays one stop check per decision: an atomic flag
// load, a decision charge against the budget, and (every 64th check) a
// steady_clock deadline read. The rows below put an armed-but-idle
// budget (limits high enough never to fire) next to the ungoverned
// counter on the triangle blow-up workload, so BENCH_wmc.json records
// the per-decision overhead directly; the target is under 2% (the
// bench_check.py gate allows 25% before failing a PR). A third row
// measures the other end: how fast a tiny decision budget returns
// certified anytime bounds on an instance whose exact count takes far
// longer — the latency a `--budget-ms` caller actually experiences.

#include <benchmark/benchmark.h>

#include <cstdint>

#include "grounding/grounded_wfomc.h"
#include "logic/parser.h"
#include "runtime/budget.h"
#include "wmc/dpll_counter.h"

namespace {

using swfomc::runtime::Budget;
using swfomc::wmc::DpllCounter;

constexpr const char* kTriangle =
    "exists x exists y exists z (S(x,y) & S(y,z) & S(z,x))";

void BM_Budget_Ungoverned_Triangle(benchmark::State& state) {
  swfomc::logic::Vocabulary vocab;
  swfomc::logic::Formula phi = swfomc::logic::Parse(kTriangle, &vocab);
  std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        swfomc::grounding::GroundedWFOMC(phi, vocab, n));
  }
}
BENCHMARK(BM_Budget_Ungoverned_Triangle)
    ->Arg(4)
    ->Arg(5)
    ->Unit(benchmark::kMillisecond);

// Identical search with a budget armed but never binding: every decision
// runs the full stop-check path (flag load, decision charge, periodic
// deadline read), and the count comes back kExact and bit-identical.
void BM_Budget_GovernedIdle_Triangle(benchmark::State& state) {
  swfomc::logic::Vocabulary vocab;
  swfomc::logic::Formula phi = swfomc::logic::Parse(kTriangle, &vocab);
  std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    Budget budget;
    budget.SetWallClockMs(3'600'000);
    budget.SetMaxDecisions(std::uint64_t{1} << 40);
    DpllCounter::Options options;
    options.budget = &budget;
    benchmark::DoNotOptimize(
        swfomc::grounding::GroundedWFOMCBounded(phi, vocab, n, options));
  }
}
BENCHMARK(BM_Budget_GovernedIdle_Triangle)
    ->Arg(4)
    ->Arg(5)
    ->Unit(benchmark::kMillisecond);

// Anytime latency: certified bounds from a search allowed only `range(1)`
// decisions on an instance whose exact count takes orders of magnitude
// longer (triangle n=6 runs ~45 s ungoverned on the CI baseline). This
// row is dominated by grounding + one bracketed descent, not by search.
void BM_Budget_AnytimeBounds_Triangle(benchmark::State& state) {
  swfomc::logic::Vocabulary vocab;
  swfomc::logic::Formula phi = swfomc::logic::Parse(kTriangle, &vocab);
  std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t cap = static_cast<std::uint64_t>(state.range(1));
  for (auto _ : state) {
    Budget budget;
    budget.SetMaxDecisions(cap);
    DpllCounter::Options options;
    options.budget = &budget;
    benchmark::DoNotOptimize(
        swfomc::grounding::GroundedWFOMCBounded(phi, vocab, n, options));
  }
}
BENCHMARK(BM_Budget_AnytimeBounds_Triangle)
    ->Args({6, 64})
    ->Args({6, 1024})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
