// E6 — Appendix C: PTIME data complexity for FO². A basket of FO²
// sentences run through the lifted cell algorithm at domain sizes no
// grounded engine could touch (2^{n²} worlds), with cell statistics, plus
// a lifted-vs-grounded crossover table.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "fo2/cell_algorithm.h"
#include "grounding/grounded_wfomc.h"
#include "logic/parser.h"

namespace {

using swfomc::numeric::BigRational;

struct Sentence {
  const char* name;
  const char* text;
  std::uint64_t big_n;  // scaled per cell count (stays PTIME regardless)
};

// big_n per sentence is sized to its cell count: the composition sum has
// C(n + cells - 1, cells - 1) terms, so sentences whose Scott/Skolem form
// has more 1-types get a smaller (still grounded-unreachable) n.
const Sentence kBasket[] = {
    {"forall-exists", "forall x exists y R(x,y)", 40},
    {"symmetric", "forall x forall y (R(x,y) => R(y,x))", 64},
    {"table1", "forall x forall y (R(x) | S(x,y) | T(y))", 16},
    {"defined-by-exists", "forall x (R(x) <=> exists y S(x,y))", 16},
    {"reflexive-diag", "forall x S(x,x)", 64},
    {"anti-equality", "forall x exists y (S(x,y) & x != y)", 24},
};

void PrintTable() {
  std::printf("== Appendix C: lifted FO2 at scale ==\n\n");
  std::printf("%-20s %-6s %-7s %-7s %-12s %s\n", "sentence", "n", "cells",
              "valid", "terms", "FOMC digits");
  for (const Sentence& entry : kBasket) {
    swfomc::logic::Vocabulary vocab;
    swfomc::logic::Formula f = swfomc::logic::Parse(entry.text, &vocab);
    swfomc::fo2::CellStats stats;
    swfomc::numeric::BigRational count =
        swfomc::fo2::LiftedWFOMC(f, vocab, entry.big_n, &stats);
    std::printf("%-20s %-6llu %-7zu %-7zu %-12llu %zu\n", entry.name,
                static_cast<unsigned long long>(entry.big_n), stats.cells,
                stats.valid_cells,
                static_cast<unsigned long long>(stats.composition_terms),
                count.ToInteger().ToString().size());
  }

  std::printf("\n-- lifted vs grounded on forall x exists y R(x,y) --\n");
  std::printf("%-4s %-24s %s\n", "n", "FOMC", "engines agreeing");
  swfomc::logic::Vocabulary vocab;
  swfomc::logic::Formula f =
      swfomc::logic::Parse("forall x exists y R(x,y)", &vocab);
  for (std::uint64_t n = 1; n <= 4; ++n) {
    auto lifted = swfomc::fo2::LiftedFOMC(f, vocab, n);
    auto grounded = swfomc::grounding::GroundedFOMC(f, vocab, n);
    std::printf("%-4llu %-24s %s\n", static_cast<unsigned long long>(n),
                lifted.ToString().c_str(),
                lifted == grounded ? "lifted == grounded" : "MISMATCH");
  }
  std::printf("\nGrounded cost explodes with n (timings below); lifted "
              "cost is polynomial: that is Appendix C's theorem.\n\n");
}

void BM_FO2_Lifted_ForallExists(benchmark::State& state) {
  std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  swfomc::logic::Vocabulary vocab;
  swfomc::logic::Formula f =
      swfomc::logic::Parse("forall x exists y R(x,y)", &vocab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(swfomc::fo2::LiftedFOMC(f, vocab, n));
  }
}
BENCHMARK(BM_FO2_Lifted_ForallExists)->Arg(8)->Arg(16)->Arg(32)->Arg(48);

void BM_FO2_Grounded_ForallExists(benchmark::State& state) {
  std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  swfomc::logic::Vocabulary vocab;
  swfomc::logic::Formula f =
      swfomc::logic::Parse("forall x exists y R(x,y)", &vocab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        swfomc::grounding::GroundedFOMC(f, vocab, n));
  }
}
BENCHMARK(BM_FO2_Grounded_ForallExists)->Arg(2)->Arg(3)->Arg(4);

void BM_FO2_Lifted_Table1(benchmark::State& state) {
  std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  swfomc::logic::Vocabulary vocab;
  swfomc::logic::Formula f = swfomc::logic::Parse(
      "forall x forall y (R(x) | S(x,y) | T(y))", &vocab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(swfomc::fo2::LiftedFOMC(f, vocab, n));
  }
}
BENCHMARK(BM_FO2_Lifted_Table1)->Arg(4)->Arg(8)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
