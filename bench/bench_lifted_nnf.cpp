// The economics of lifted knowledge compilation — what a domain-
// parametric circuit buys over per-n grounded compiles.
//
// Family: forall x forall y (S(x,y) -> (C(x) | C(y))), the liftable FO²
// analogue of the triangle query (the triangle itself is FO3 and has no
// lifted compilation; this family exercises the same edge/color shape
// with two cells per color assignment).
//
// Rows:
//   CompileOnceEvalSweep/N  the lifted pipeline: one Compile(Φ), then
//                           Evaluate(n) for every n in [1, N] with a
//                           shared binomial table — the whole sweep is
//                           one circuit reused N times.
//   GroundedCompilePerN/N   the pre-lifted baseline: one grounded
//                           compile per n in [1, N]. Grounded compile
//                           cost roughly quadruples per +2 n on this
//                           family (~0.4 s at n = 16 alone), so the
//                           baseline row stops at N = 16 — the lifted
//                           row at the same N is the head-to-head.
//   DirectCellSweep/N       the no-circuit alternative: a fresh direct
//                           cell-algorithm count per n (what `swfomc
//                           run` does without compilation).
//
// The acceptance bar for the lifted compiler is CompileOnceEvalSweep/16
// >= 10x below GroundedCompilePerN/16; BENCH_wmc.json records both so
// the gap is audited by every PR. A serve row measures the cache
// consequence: one lifted entry answering queries at 32 distinct domain
// sizes, reported as a warm-hit rate (goal: (queries-1)/queries — only
// the first query compiles).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>

#include "api/engine.h"
#include "fo2/cell_algorithm.h"
#include "numeric/combinatorics.h"
#include "serve/server.h"

namespace {

using swfomc::api::CompileOptions;
using swfomc::api::CompileResult;
using swfomc::api::Engine;
using swfomc::api::Method;

constexpr const char* kFamily =
    "forall x forall y (S(x,y) -> (C(x) | C(y)))";

void BM_LiftedNnf_CompileOnceEvalSweep(benchmark::State& state) {
  const std::uint64_t n_hi = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    Engine engine{swfomc::logic::Vocabulary{}};
    swfomc::logic::Formula sentence = engine.Parse(kFamily);
    CompileResult result = engine.Compile(sentence, CompileOptions{});
    swfomc::numeric::BinomialTable binomials;
    const swfomc::nnf::LiftedCircuit& circuit =
        result.compiled->lifted_circuit();
    swfomc::nnf::LiftedCircuit::Weights weights = circuit.DefaultWeights();
    for (std::uint64_t n = 1; n <= n_hi; ++n) {
      benchmark::DoNotOptimize(circuit.Evaluate(n, weights, &binomials));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n_hi));
}
BENCHMARK(BM_LiftedNnf_CompileOnceEvalSweep)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_LiftedNnf_GroundedCompilePerN(benchmark::State& state) {
  const std::uint64_t n_hi = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    Engine engine{swfomc::logic::Vocabulary{}};
    swfomc::logic::Formula sentence = engine.Parse(kFamily);
    for (std::uint64_t n = 1; n <= n_hi; ++n) {
      CompileOptions options;
      options.domain_size = n;
      options.method = Method::kGrounded;
      CompileResult result = engine.Compile(sentence, options);
      benchmark::DoNotOptimize(result.compiled->Evaluate(n, {}));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n_hi));
}
BENCHMARK(BM_LiftedNnf_GroundedCompilePerN)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_LiftedNnf_DirectCellSweep(benchmark::State& state) {
  const std::uint64_t n_hi = static_cast<std::uint64_t>(state.range(0));
  Engine engine{swfomc::logic::Vocabulary{}};
  swfomc::logic::Formula sentence = engine.Parse(kFamily);
  for (auto _ : state) {
    for (std::uint64_t n = 1; n <= n_hi; ++n) {
      benchmark::DoNotOptimize(
          swfomc::fo2::LiftedWFOMC(sentence, engine.vocabulary(), n));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n_hi));
}
BENCHMARK(BM_LiftedNnf_DirectCellSweep)->Arg(32)
    ->Unit(benchmark::kMillisecond);

// One server, one liftable sentence, 32 distinct domain sizes per
// iteration: the sentence-keyed lifted cache turns all but the first
// query into warm hits, and the counter records the measured rate.
void BM_LiftedNnf_ServeWarmAcrossDomains(benchmark::State& state) {
  using swfomc::serve::Server;
  std::uint64_t queries = 0;
  std::uint64_t hits = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Server server;  // cold cache each iteration
    state.ResumeTiming();
    for (std::uint64_t n = 1; n <= 32; ++n) {
      std::string line = std::string(R"js({"sentence": ")js") + kFamily +
                         R"js(", "domain": )js" + std::to_string(n) +
                         R"js(, "weights": [{"S": ["2", "1"]}]})js";
      Server::Reply reply = server.HandleLine(line);
      benchmark::DoNotOptimize(reply.json);
    }
    swfomc::serve::ServerStats stats = server.Stats();
    queries += stats.cache_hits + stats.cache_misses;
    hits += stats.cache_hits;
  }
  state.counters["warm_hit_rate"] =
      queries == 0 ? 0.0
                   : static_cast<double>(hits) / static_cast<double>(queries);
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_LiftedNnf_ServeWarmAcrossDomains)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
