// E5 — Theorem 3.7: the QS4 sentence
//
//   QS4 = ∀x1 ∀x2 ∀y1 ∀y2 (S(x1,y1) ∨ ¬S(x2,y1) ∨ S(x2,y2) ∨ ¬S(x1,y2))
//
// has PTIME data complexity via the paper's f/g dynamic program, even
// though no standard lifted-inference rule computes it. This bench
//   * cross-checks the DP against the grounded engine for small n,
//   * prints the exact FOMC sequence (weights 1,1),
//   * scales the DP far past where grounding blows up, demonstrating the
//     PTIME shape.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "grounding/grounded_wfomc.h"
#include "lifted/rules.h"
#include "logic/parser.h"
#include "numeric/rational.h"
#include "qs4/qs4.h"

namespace {

using swfomc::numeric::BigRational;

void PrintTable() {
  std::printf("== Theorem 3.7: QS4 dynamic program vs grounded engine ==\n\n");
  std::printf("-- FOMC(QS4, n): DP f(n,n)+g(n,n) vs grounded DPLL --\n");
  std::printf("%3s  %-34s %-34s %s\n", "n", "DP (Theorem 3.7)",
              "grounded DPLL", "check");
  swfomc::qs4::Qs4Solver unit_solver{BigRational(1), BigRational(1)};
  swfomc::logic::Vocabulary vocab =
      swfomc::qs4::Qs4Vocabulary(BigRational(1), BigRational(1));
  swfomc::logic::Formula qs4 = swfomc::qs4::Qs4Sentence(vocab);
  for (std::uint64_t n = 0; n <= 12; ++n) {
    BigRational dp = unit_solver.WFOMC(n);
    std::string grounded = "(skipped)";
    const char* check = "";
    if (n <= 3) {
      BigRational g = swfomc::grounding::GroundedWFOMC(qs4, vocab, n);
      grounded = g.ToString();
      check = dp == g ? "OK" : "MISMATCH";
    }
    std::printf("%3llu  %-34s %-34s %s\n",
                static_cast<unsigned long long>(n), dp.ToString().c_str(),
                grounded.c_str(), check);
  }

  std::printf("\n-- Weighted: w = 2, wbar = 3 --\n");
  std::printf("%3s  %-40s %s\n", "n", "DP", "grounded check");
  swfomc::qs4::Qs4Solver weighted_solver{BigRational(2), BigRational(3)};
  swfomc::logic::Vocabulary wvocab =
      swfomc::qs4::Qs4Vocabulary(BigRational(2), BigRational(3));
  swfomc::logic::Formula wqs4 = swfomc::qs4::Qs4Sentence(wvocab);
  for (std::uint64_t n = 1; n <= 8; ++n) {
    BigRational dp = weighted_solver.WFOMC(n);
    std::string check = "(skipped)";
    if (n <= 3) {
      check = dp == swfomc::grounding::GroundedWFOMC(wqs4, wvocab, n)
                  ? "OK"
                  : "MISMATCH";
    }
    std::printf("%3llu  %-40s %s\n", static_cast<unsigned long long>(n),
                dp.ToString().c_str(), check.c_str());
  }

  std::printf(
      "\n-- PTIME shape: DP digit growth is polynomial bookkeeping over "
      "O(n^2) states --\n");
  std::printf("%4s  %s\n", "n", "digits of FOMC(QS4, n)");
  for (std::uint64_t n : {10ULL, 20ULL, 30ULL, 40ULL, 60ULL}) {
    swfomc::qs4::Qs4Solver solver{BigRational(1), BigRational(1)};
    BigRational value = solver.WFOMC(n);
    std::printf("%4llu  %zu\n", static_cast<unsigned long long>(n),
                value.ToString().size());
  }
  std::printf("\n-- \"none of the existing lifted inference rules are "
              "sufficient\" (Theorem 3.7) --\n");
  {
    swfomc::lifted::RuleEngine rules(vocab);
    auto attempt = rules.Probability(qs4, 3);
    std::printf("rule engine on QS4 at n = 3: %s\n",
                attempt.has_value() ? "SOLVED (unexpected!)"
                                    : "stuck (as the paper states)");
    if (!attempt.has_value()) {
      std::printf("  first unhandled subproblem: %s\n",
                  rules.trace().failure.c_str());
    }
    // The same rule set does handle the textbook sentences:
    swfomc::logic::Vocabulary easy_vocab;
    swfomc::logic::Formula easy = swfomc::logic::Parse(
        "forall x exists y R(x,y)", &easy_vocab);
    swfomc::lifted::RuleEngine easy_rules(easy_vocab);
    std::printf("rule engine on forall x exists y R(x,y) at n = 10: %s\n",
                easy_rules.Probability(easy, 10).has_value()
                    ? "solved (separator rule)"
                    : "stuck (unexpected!)");
  }

  std::printf("\nTimings below: DP scales polynomially; grounded DPLL is "
              "cut off at n = 3.\n\n");
}

void BM_Qs4_DynamicProgram(benchmark::State& state) {
  std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    swfomc::qs4::Qs4Solver solver{BigRational(1), BigRational(1)};
    benchmark::DoNotOptimize(solver.WFOMC(n));
  }
}
BENCHMARK(BM_Qs4_DynamicProgram)->Arg(5)->Arg(10)->Arg(20)->Arg(40)->Arg(60);

void BM_Qs4_Grounded(benchmark::State& state) {
  std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  swfomc::logic::Vocabulary vocab =
      swfomc::qs4::Qs4Vocabulary(BigRational(1), BigRational(1));
  swfomc::logic::Formula qs4 = swfomc::qs4::Qs4Sentence(vocab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        swfomc::grounding::GroundedWFOMC(qs4, vocab, n));
  }
}
BENCHMARK(BM_Qs4_Grounded)->Arg(1)->Arg(2)->Arg(3);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
