// E1 — Table 1: three variants of WFOMC on Φ = ∀x∀y (R(x) ∨ S(x,y) ∨ T(y)).
//
// Reproduces each row of the paper's Table 1:
//   * Symmetric FOMC:  closed form Σ_{k,m} C(n,k)C(n,m) 2^{n²-km}, checked
//     against the lifted FO² engine and (small n) the grounded engine;
//   * Symmetric WFOMC: the W_{k,m} closed form vs the lifted engine;
//   * Asymmetric WFOMC: per-tuple weights — #P-hard in general; we show
//     the grounded engine is the only option and how it scales vs lifted.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "closedforms/closed_forms.h"
#include "fo2/cell_algorithm.h"
#include "grounding/grounded_wfomc.h"
#include "logic/parser.h"

namespace {

using swfomc::numeric::BigInt;
using swfomc::numeric::BigRational;

const char* kSentence = "forall x forall y (R(x) | S(x,y) | T(y))";

swfomc::logic::Vocabulary UnitVocabulary() {
  swfomc::logic::Vocabulary vocab;
  vocab.AddRelation("R", 1);
  vocab.AddRelation("S", 2);
  vocab.AddRelation("T", 1);
  return vocab;
}

swfomc::logic::Vocabulary WeightedVocabulary() {
  swfomc::logic::Vocabulary vocab;
  vocab.AddRelation("R", 1, BigRational(2), BigRational(1));
  vocab.AddRelation("S", 2, BigRational::Fraction(1, 2), BigRational(1));
  vocab.AddRelation("T", 1, BigRational(1), BigRational(3));
  return vocab;
}

void PrintTable() {
  std::printf(
      "== Table 1: WFOMC variants on Phi = forall x,y (R(x)|S(x,y)|T(y)) "
      "==\n\n");
  std::printf("-- Row 1: Symmetric FOMC (w = wbar = 1) --\n");
  std::printf("%3s  %-28s %-28s %s\n", "n", "closed form", "lifted FO2",
              "grounded DPLL");
  swfomc::logic::Vocabulary unit = UnitVocabulary();
  swfomc::logic::Formula phi = swfomc::logic::ParseStrict(kSentence, unit);
  for (std::uint64_t n = 1; n <= 10; ++n) {
    BigInt closed = swfomc::closedforms::Table1FOMC(n);
    BigInt lifted = swfomc::fo2::LiftedFOMC(phi, unit, n);
    std::string grounded = n <= 3
        ? swfomc::grounding::GroundedFOMC(phi, unit, n).ToString()
        : std::string("(2^" + std::to_string(n * n + 2 * n) + " worlds)");
    std::printf("%3llu  %-28s %-28s %s   %s\n",
                static_cast<unsigned long long>(n),
                closed.ToString().c_str(), lifted.ToString().c_str(),
                grounded.c_str(), closed == lifted ? "OK" : "MISMATCH");
  }

  std::printf("\n-- Row 2: Symmetric WFOMC (w_R=2, w_S=1/2, w_T=1; "
              "wbar_T=3) --\n");
  std::printf("%3s  %-36s %s\n", "n", "closed form W_{k,m} sum",
              "lifted FO2");
  swfomc::logic::Vocabulary weighted = WeightedVocabulary();
  swfomc::logic::Formula phi_w =
      swfomc::logic::ParseStrict(kSentence, weighted);
  for (std::uint64_t n = 1; n <= 8; ++n) {
    BigRational closed = swfomc::closedforms::Table1WFOMC(
        n, BigRational(2), BigRational(1), BigRational::Fraction(1, 2),
        BigRational(1), BigRational(1), BigRational(3));
    BigRational lifted = swfomc::fo2::LiftedWFOMC(phi_w, weighted, n);
    std::printf("%3llu  %-36s %-36s %s\n",
                static_cast<unsigned long long>(n),
                closed.ToString().c_str(), lifted.ToString().c_str(),
                closed == lifted ? "OK" : "MISMATCH");
  }

  std::printf("\n-- Row 3: Asymmetric WFOMC (per-tuple weights; #P-hard "
              "[DS07]) --\n");
  std::printf("%3s  %s\n", "n", "grounded value (weights w(t) = 1 + flat "
                                "index mod 3, wbar = 1)");
  swfomc::logic::Vocabulary unit2 = UnitVocabulary();
  swfomc::logic::Formula phi2 = swfomc::logic::ParseStrict(kSentence, unit2);
  for (std::uint64_t n = 1; n <= 3; ++n) {
    BigRational value = swfomc::grounding::GroundedWFOMCAsymmetric(
        phi2, unit2, n,
        [](const swfomc::grounding::TupleIndex&, swfomc::prop::VarId v) {
          return swfomc::wmc::VariableWeights{
              BigRational(static_cast<std::int64_t>(1 + v % 3)),
              BigRational(1)};
        });
    std::printf("%3llu  %s\n", static_cast<unsigned long long>(n),
                value.ToString().c_str());
  }
  std::printf("\nShape check: symmetric rows are PTIME in n (lifted), the "
              "asymmetric row has no lifted path — timings below.\n\n");
}

void BM_Table1_ClosedForm(benchmark::State& state) {
  std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(swfomc::closedforms::Table1FOMC(n));
  }
}
BENCHMARK(BM_Table1_ClosedForm)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_Table1_LiftedFO2(benchmark::State& state) {
  std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  swfomc::logic::Vocabulary vocab = UnitVocabulary();
  swfomc::logic::Formula phi = swfomc::logic::ParseStrict(kSentence, vocab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(swfomc::fo2::LiftedFOMC(phi, vocab, n));
  }
}
BENCHMARK(BM_Table1_LiftedFO2)->Arg(4)->Arg(8)->Arg(16);

void BM_Table1_GroundedSymmetric(benchmark::State& state) {
  std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  swfomc::logic::Vocabulary vocab = UnitVocabulary();
  swfomc::logic::Formula phi = swfomc::logic::ParseStrict(kSentence, vocab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(swfomc::grounding::GroundedFOMC(phi, vocab, n));
  }
}
BENCHMARK(BM_Table1_GroundedSymmetric)->Arg(1)->Arg(2)->Arg(3);

void BM_Table1_GroundedAsymmetric(benchmark::State& state) {
  std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  swfomc::logic::Vocabulary vocab = UnitVocabulary();
  swfomc::logic::Formula phi = swfomc::logic::ParseStrict(kSentence, vocab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(swfomc::grounding::GroundedWFOMCAsymmetric(
        phi, vocab, n,
        [](const swfomc::grounding::TupleIndex&, swfomc::prop::VarId v) {
          return swfomc::wmc::VariableWeights{
              BigRational(static_cast<std::int64_t>(1 + v % 3)),
              BigRational(1)};
        }));
  }
}
BENCHMARK(BM_Table1_GroundedAsymmetric)->Arg(1)->Arg(2)->Arg(3);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
