// E2 — Figure 1: the data-complexity taxonomy for conjunctive queries.
//
// For each named query of Section 3.2 we print its acyclicity class (the
// position in Figure 1) and demonstrate the complexity split: γ-acyclic
// queries run through the Theorem 3.6 PTIME evaluator to large n, while
// the typed cycles C_3, C_4 (conjectured hard) only admit the grounded
// exponential engine.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "cq/acyclicity.h"
#include "cq/gamma_evaluator.h"
#include "cq/hypergraph.h"
#include "cq/typed_cycle.h"
#include "grounding/grounded_wfomc.h"

namespace {

using swfomc::cq::ConjunctiveQuery;
using swfomc::numeric::BigRational;

struct NamedQuery {
  const char* name;
  const char* text;
  const char* paper_position;
};

const NamedQuery kQueries[] = {
    {"chain-2", "R1(x0,x1), R2(x1,x2)", "gamma-acyclic => PTIME (Thm 3.6)"},
    {"chain-4", "R1(x0,x1), R2(x1,x2), R3(x2,x3), R4(x3,x4)",
     "gamma-acyclic => PTIME (Example 3.10)"},
    {"star", "R(x,y), S(x,z), T(x,u)", "gamma-acyclic => PTIME"},
    {"c_gamma", "R(x,z), S(x,y,z), T(y,z)",
     "gamma-CYCLIC yet PTIME via separator z (paper, Fig. 1)"},
    {"c_jtdb", "R(x,y,z,u), S(x,y), T(x,z), V(x,u)",
     "PTIME, outside jtdb (paper, Fig. 1)"},
    {"C3", "R1(x1,x2), R2(x2,x3), R3(x3,x1)",
     "typed cycle: conjectured hard (Ck-hard region)"},
    {"C4", "R1(x1,x2), R2(x2,x3), R3(x3,x4), R4(x4,x1)",
     "typed cycle: conjectured hard"},
    {"alpha-covered-triangle", "A(x,y,z), R1(x,y), R2(y,z), R3(z,x)",
     "alpha-acyclic: as hard as all CQs w/o self-joins"},
};

void PrintTaxonomy() {
  std::printf("== Figure 1: CQ data-complexity taxonomy ==\n\n");
  std::printf("%-24s %-14s %-10s %s\n", "query", "class", "weak-beta",
              "paper position");
  for (const NamedQuery& entry : kQueries) {
    ConjunctiveQuery query = ConjunctiveQuery::FromString(entry.text);
    swfomc::cq::Hypergraph graph = swfomc::cq::BuildHypergraph(query);
    auto cycle = swfomc::cq::FindWeakBetaCycle(graph);
    std::string beta = cycle.has_value()
                           ? "len-" + std::to_string(cycle->edges.size())
                           : std::string("none");
    std::printf("%-24s %-14s %-10s %s\n", entry.name,
                swfomc::cq::ToString(swfomc::cq::Classify(graph)),
                beta.c_str(), entry.paper_position);
  }

  std::printf("\n-- gamma-acyclic queries at scale (Theorem 3.6) --\n");
  std::printf("%-24s", "n:");
  for (std::uint64_t n : {4, 8, 16, 32}) std::printf(" %14llu",
      static_cast<unsigned long long>(n));
  std::printf("\n");
  for (const NamedQuery& entry : kQueries) {
    ConjunctiveQuery query = ConjunctiveQuery::FromString(entry.text);
    if (!swfomc::cq::IsGammaAcyclic(swfomc::cq::BuildHypergraph(query))) {
      continue;
    }
    std::printf("%-24s", entry.name);
    for (std::uint64_t n : {4, 8, 16, 32}) {
      BigRational p = swfomc::cq::GammaAcyclicProbability(query, n);
      std::printf(" %14.6g", p.ToDouble());
    }
    std::printf("\n");
  }

  std::printf("\n-- typed cycles: exact counts via grounding only --\n");
  std::printf("%-6s %-4s %s\n", "query", "n", "Pr(C_k) (p = 1/2)");
  for (const char* text :
       {"R1(x1,x2), R2(x2,x3), R3(x3,x1)",
        "R1(x1,x2), R2(x2,x3), R3(x3,x4), R4(x4,x1)"}) {
    ConjunctiveQuery query = ConjunctiveQuery::FromString(text);
    auto [sentence, vocab] = query.ToSentence();
    std::size_t k = query.atoms().size();
    for (std::uint64_t n = 1; n <= 2; ++n) {
      BigRational p =
          swfomc::grounding::GroundedProbability(sentence, vocab, n);
      std::printf("C%zu     %-4llu %s\n", k,
                  static_cast<unsigned long long>(n),
                  p.ToString().c_str());
    }
  }
  std::printf("\n-- \"Ck-hard\": the Section 3.2 embedding of C_k into "
              "beta-cyclic queries --\n");
  std::printf("%-28s %-4s %-18s %-18s %s\n", "beta-cyclic query", "k",
              "Pr(C_k)", "Pr(Q embedded)", "check");
  {
    // A 3-cycle with baggage: extra variable w in a cycle relation and a
    // satellite atom A(w). The reduction pins w's domain to 1 and A's
    // probability to 1, so Q inherits C_3's count exactly.
    ConjunctiveQuery baggage;
    baggage.AddAtom("R1", {"x1", "x2", "w"});
    baggage.AddAtom("R2", {"x2", "x3"});
    baggage.AddAtom("R3", {"x3", "x1"});
    baggage.AddAtom("A", {"w"});
    std::vector<std::uint64_t> domains = {2, 2, 2};
    std::vector<BigRational> p(3, BigRational::Fraction(1, 2));
    swfomc::cq::CkEmbedding embedding =
        swfomc::cq::EmbedCkInBetaCyclicQuery(baggage, domains, p);
    BigRational lhs = swfomc::cq::TypedCycleProbability(3, domains, p);
    BigRational rhs = swfomc::cq::TypedGroundedProbability(
        embedding.query, embedding.domain_sizes);
    std::printf("%-28s %-4zu %-18s %-18s %s\n",
                "R1(x1,x2,w),R2,R3,A(w)", embedding.k,
                lhs.ToString().c_str(), rhs.ToString().c_str(),
                lhs == rhs ? "OK" : "MISMATCH");
  }
  std::printf(
      "\nA PTIME algorithm for any beta-cyclic query would therefore give\n"
      "PTIME for some C_k (Figure 1's \"Ck-hard\" region).\n");

  std::printf("\nShape check: the PTIME region reaches n = 32 instantly; "
              "the cyclic region is exponential (timings below).\n\n");
}

void BM_Figure1_GammaChain(benchmark::State& state) {
  std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  ConjunctiveQuery query = ConjunctiveQuery::FromString(
      "R1(x0,x1), R2(x1,x2), R3(x2,x3), R4(x3,x4)");
  for (auto _ : state) {
    benchmark::DoNotOptimize(swfomc::cq::GammaAcyclicProbability(query, n));
  }
}
BENCHMARK(BM_Figure1_GammaChain)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_Figure1_CGamma_Grounded(benchmark::State& state) {
  // cγ is PTIME per the paper but our library evaluates non-γ-acyclic
  // queries by grounding — this is the honest baseline cost.
  std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  ConjunctiveQuery query =
      ConjunctiveQuery::FromString("R(x,z), S(x,y,z), T(y,z)");
  auto [sentence, vocab] = query.ToSentence();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        swfomc::grounding::GroundedProbability(sentence, vocab, n));
  }
}
BENCHMARK(BM_Figure1_CGamma_Grounded)->Arg(1)->Arg(2);

void BM_Figure1_TypedCycle_Grounded(benchmark::State& state) {
  std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  ConjunctiveQuery query =
      ConjunctiveQuery::FromString("R1(x1,x2), R2(x2,x3), R3(x3,x1)");
  auto [sentence, vocab] = query.ToSentence();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        swfomc::grounding::GroundedProbability(sentence, vocab, n));
  }
}
BENCHMARK(BM_Figure1_TypedCycle_Grounded)->Arg(1)->Arg(2);

}  // namespace

int main(int argc, char** argv) {
  PrintTaxonomy();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
