// Observability overhead — the cost of being measurable.
//
// The contract is that disabled observability is one predictable branch
// per decision and enabled observability is a handful of relaxed
// shard-local adds every 4096 decisions. The rows below put the plain
// triangle grounded search next to the same search with a live
// MetricsRegistry attached, so BENCH_wmc.json records the deltas
// directly; the disabled row must stay within 2% of the seed baseline
// (results are bit-identical either way — obs_test and serve_test check
// that, this file checks the price). The microbench rows price the
// registry primitives themselves: a sharded counter add, a histogram
// record, and a full text-exposition scrape.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>

#include "grounding/grounded_wfomc.h"
#include "logic/parser.h"
#include "obs/metrics.h"
#include "wmc/dpll_counter.h"

namespace {

using swfomc::obs::Counter;
using swfomc::obs::Histogram;
using swfomc::obs::MetricsRegistry;
using swfomc::wmc::DpllCounter;

constexpr const char* kTriangle =
    "exists x exists y exists z (S(x,y) & S(y,z) & S(z,x))";

// Baseline: the counter with no observability attached — the hot path
// takes the not-observed branch on every decision.
void BM_Obs_Disabled_Triangle(benchmark::State& state) {
  swfomc::logic::Vocabulary vocab;
  swfomc::logic::Formula phi = swfomc::logic::Parse(kTriangle, &vocab);
  std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    DpllCounter::Options options;
    benchmark::DoNotOptimize(
        swfomc::grounding::GroundedWFOMCBounded(phi, vocab, n, options));
  }
}
BENCHMARK(BM_Obs_Disabled_Triangle)
    ->Arg(4)
    ->Arg(5)
    ->Unit(benchmark::kMillisecond);

// Identical search with a registry attached: live decision/propagation/
// cache counters flush every 4096 decisions. The count comes back
// bit-identical; this row prices the bookkeeping.
void BM_Obs_MetricsEnabled_Triangle(benchmark::State& state) {
  swfomc::logic::Vocabulary vocab;
  swfomc::logic::Formula phi = swfomc::logic::Parse(kTriangle, &vocab);
  std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  MetricsRegistry registry;
  for (auto _ : state) {
    DpllCounter::Options options;
    options.metrics = &registry;
    benchmark::DoNotOptimize(
        swfomc::grounding::GroundedWFOMCBounded(phi, vocab, n, options));
  }
}
BENCHMARK(BM_Obs_MetricsEnabled_Triangle)
    ->Arg(4)
    ->Arg(5)
    ->Unit(benchmark::kMillisecond);

// The primitive the hot path leans on: one relaxed add on a
// thread-local shard.
void BM_Obs_CounterAdd(benchmark::State& state) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("swfomc_bench_total");
  for (auto _ : state) {
    counter->Add();
  }
  benchmark::DoNotOptimize(counter->Value());
}
BENCHMARK(BM_Obs_CounterAdd);

// One histogram sample: bucket index, bucket add, sum add, count add.
void BM_Obs_HistogramRecord(benchmark::State& state) {
  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram("swfomc_bench_usec");
  std::uint64_t value = 1;
  for (auto _ : state) {
    histogram->Record(value);
    value = (value * 2862933555777941757ULL + 3037000493ULL) & 0xffff;
  }
  benchmark::DoNotOptimize(histogram->Take().count);
}
BENCHMARK(BM_Obs_HistogramRecord);

// A full scrape over a registry shaped like the serve daemon's: the
// cold-plane cost a `metrics` protocol command pays.
void BM_Obs_RegistryScrape(benchmark::State& state) {
  MetricsRegistry registry;
  for (int i = 0; i < 8; ++i) {
    registry.GetCounter("swfomc_bench_counter_" + std::to_string(i))
        ->Add(static_cast<std::uint64_t>(i) * 1000);
    registry.GetGauge("swfomc_bench_gauge_" + std::to_string(i))
        ->Set(i * 37);
  }
  for (int i = 0; i < 3; ++i) {
    Histogram* histogram =
        registry.GetHistogram("swfomc_bench_hist_" + std::to_string(i));
    for (std::uint64_t v = 1; v < 4096; v *= 3) histogram->Record(v);
  }
  for (auto _ : state) {
    std::string text = registry.TextExposition();
    benchmark::DoNotOptimize(text.data());
  }
}
BENCHMARK(BM_Obs_RegistryScrape);

}  // namespace

BENCHMARK_MAIN();
