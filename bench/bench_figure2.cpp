// E4 — Figure 2 / Theorem 4.1(1): combined complexity of FOMC for FO².
//
// The hardness direction reduces #SAT to FOMC: for a Boolean formula F
// over n variables, the FO² sentence ϕ_F (the Figure 2 chain gadget)
// satisfies FOMC(ϕ_F, n+1) = (n+1)! · #F. This bench
//   * verifies the identity exactly for a family of Boolean formulas,
//   * reports how FOMC time scales with formula size (the reduction is
//     the paper's evidence that combined complexity is #P-hard).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "numeric/combinatorics.h"
#include "prop/prop_formula.h"
#include "reductions/qbf.h"
#include "reductions/sharp_sat.h"
#include "wmc/brute_force.h"

namespace {

using swfomc::numeric::BigInt;
using swfomc::prop::PropAnd;
using swfomc::prop::PropFormula;
using swfomc::prop::PropNot;
using swfomc::prop::PropOr;
using swfomc::prop::PropVar;

struct Workload {
  const char* name;
  PropFormula formula;
  std::uint32_t variables;
};

// (X1 | X2) & (!X2 | X3) & ... — a satisfiable chain of binary clauses.
PropFormula ClauseChain(std::uint32_t variables) {
  std::vector<PropFormula> clauses;
  for (std::uint32_t i = 0; i + 1 < variables; ++i) {
    clauses.push_back(i % 2 == 0 ? PropOr(PropVar(i), PropVar(i + 1))
                                 : PropOr(PropNot(PropVar(i)),
                                          PropVar(i + 1)));
  }
  return PropAnd(std::move(clauses));
}

// Exactly-one-true over k variables: #F = k.
PropFormula ExactlyOne(std::uint32_t variables) {
  std::vector<PropFormula> options;
  for (std::uint32_t i = 0; i < variables; ++i) {
    std::vector<PropFormula> conj;
    for (std::uint32_t j = 0; j < variables; ++j) {
      conj.push_back(i == j ? PropVar(j) : PropNot(PropVar(j)));
    }
    options.push_back(PropAnd(std::move(conj)));
  }
  return PropOr(std::move(options));
}

std::vector<Workload> Workloads() {
  return {
      {"X1 & X2", PropAnd(PropVar(0), PropVar(1)), 2},
      {"X1 | X2", PropOr(PropVar(0), PropVar(1)), 2},
      {"xor(X1,X2)",
       PropOr(PropAnd(PropVar(0), PropNot(PropVar(1))),
              PropAnd(PropNot(PropVar(0)), PropVar(1))),
       2},
      {"exactly-one(3)", ExactlyOne(3), 3},
      {"chain(3)", ClauseChain(3), 3},
      {"contradiction", PropAnd(PropVar(0), PropNot(PropVar(0))), 2},
      // n = 4 (domain 5) is deliberately absent: the grounded DPLL cost
      // explodes past practical limits there — the observable face of the
      // #P-hardness this reduction establishes.
  };
}

void PrintTable() {
  std::printf(
      "== Figure 2 / Theorem 4.1(1): #SAT -> FOMC(FO2) reduction ==\n\n");
  std::printf("%-16s %3s  %-10s %-10s %-22s %s\n", "F", "n", "#F (truth "
              "table)", "#F via FOMC", "FOMC(phi_F, n+1)", "check");
  for (const Workload& w : Workloads()) {
    BigInt truth = swfomc::wmc::BruteForceCount(w.formula,
                                                         w.variables);
    BigInt via_fomc =
        swfomc::reductions::SharpSatViaFOMC(w.formula, w.variables);
    // FOMC(phi_F, n+1) itself = (n+1)! * #F.
    BigInt fomc = via_fomc * swfomc::numeric::Factorial(w.variables + 1);
    std::printf("%-16s %3u  %-10s %-10s %-22s %s\n", w.name, w.variables,
                truth.ToString().c_str(), via_fomc.ToString().c_str(),
                fomc.ToString().c_str(),
                truth == via_fomc ? "OK" : "MISMATCH");
  }
  std::printf(
      "\nEvery row checks FOMC(phi_F, n+1) = (n+1)! * #F exactly; the\n"
      "reduction plus a FOMC oracle decides #SAT, so combined complexity\n"
      "for FO2 (and every FOk, k >= 2) is #P-hard.\n\n");

  // Theorem 4.1(2): the associated decision problem. QBF validity reduces
  // to spectrum membership via the ternary-S extension of the gadget.
  std::printf("-- Theorem 4.1(2): QBF -> spectrum membership (PSPACE "
              "direction) --\n");
  std::printf("%-28s %-8s %-18s %s\n", "QBF", "valid?",
              "n+1 in Spec(phi)?", "check");
  using swfomc::reductions::QuantifiedBooleanFormula;
  auto xor_matrix = PropOr(PropAnd(PropVar(0), PropNot(PropVar(1))),
                           PropAnd(PropNot(PropVar(0)), PropVar(1)));
  struct QbfRow {
    const char* name;
    QuantifiedBooleanFormula qbf;
  };
  std::vector<QbfRow> rows;
  rows.push_back({"forall X0 exists X1 xor",
                  {{{true, 0}, {false, 1}}, xor_matrix}});
  rows.push_back({"exists X1 forall X0 xor",
                  {{{false, 1}, {true, 0}}, xor_matrix}});
  rows.push_back({"forall X0 forall X1 (X0|X1)",
                  {{{true, 0}, {true, 1}}, PropOr(PropVar(0), PropVar(1))}});
  rows.push_back({"exists X0 exists X1 (X0&X1)",
                  {{{false, 0}, {false, 1}},
                   PropAnd(PropVar(0), PropVar(1))}});
  for (const QbfRow& row : rows) {
    bool valid = swfomc::reductions::EvaluateQbf(row.qbf);
    bool via_spectrum = swfomc::reductions::QbfValidViaSpectrum(row.qbf);
    std::printf("%-28s %-8s %-18s %s\n", row.name, valid ? "yes" : "no",
                via_spectrum ? "yes" : "no",
                valid == via_spectrum ? "OK" : "MISMATCH");
  }
  std::printf("\nTimings below show the cost growing with the formula "
              "(domain) size.\n\n");
}

void BM_Figure2_SharpSatViaFOMC(benchmark::State& state) {
  std::uint32_t variables = static_cast<std::uint32_t>(state.range(0));
  PropFormula f = ClauseChain(variables);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        swfomc::reductions::SharpSatViaFOMC(f, variables));
  }
}
BENCHMARK(BM_Figure2_SharpSatViaFOMC)->Arg(2)->Arg(3);

void BM_Figure2_TruthTable(benchmark::State& state) {
  std::uint32_t variables = static_cast<std::uint32_t>(state.range(0));
  PropFormula f = ClauseChain(variables);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        swfomc::wmc::BruteForceCount(f, variables));
  }
}
BENCHMARK(BM_Figure2_TruthTable)->Arg(2)->Arg(3);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
