// E8 — Lemmas 3.3–3.5: WFOMC-preserving elimination of ∃, ¬ and =.
//
// Each transform extends the vocabulary with auxiliary relations whose
// negative weights make the spurious worlds cancel. The bench applies the
// transforms to a family of sentences and checks
//   WFOMC(Φ, n, w, w̄) == WFOMC(Φ', n, w', w̄')
// exactly through the grounded engine, including the Lemma 3.5 recovery
// that extracts a polynomial coefficient with repeated oracle calls.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "grounding/grounded_wfomc.h"
#include "logic/parser.h"
#include "transforms/equality_removal.h"
#include "transforms/negation_removal.h"
#include "transforms/skolemization.h"

namespace {

using swfomc::numeric::BigRational;

struct Sentence {
  const char* name;
  const char* text;
  std::uint64_t max_n;
};

swfomc::logic::Vocabulary BaseVocabulary() {
  swfomc::logic::Vocabulary vocab;
  vocab.AddRelation("R", 2, BigRational(2), BigRational(1));
  vocab.AddRelation("U", 1, BigRational::Fraction(1, 2), BigRational(1));
  return vocab;
}

void PrintSkolemizationTable() {
  std::printf("-- Lemma 3.3 (Skolemization, w(A) = 1, wbar(A) = -1) --\n");
  std::printf("%-28s %2s  %-24s %-24s %s\n", "sentence", "n",
              "WFOMC before", "WFOMC after", "check");
  std::vector<Sentence> sentences = {
      {"forall x exists y R(x,y)", "forall x exists y R(x,y)", 3},
      {"exists y U(y)", "exists y U(y)", 4},
      {"exists x forall y R(x,y)", "exists x forall y R(x,y)", 3},
      {"forall x (U(x) -> exists y R(x,y))",
       "forall x (U(x) -> exists y R(x,y))", 3},
  };
  for (const Sentence& s : sentences) {
    swfomc::logic::Vocabulary vocab = BaseVocabulary();
    swfomc::logic::Formula phi = swfomc::logic::ParseStrict(s.text, vocab);
    swfomc::transforms::RewriteResult rewritten =
        swfomc::transforms::Skolemize(phi, vocab);
    for (std::uint64_t n = 1; n <= s.max_n; ++n) {
      BigRational before = swfomc::grounding::GroundedWFOMC(phi, vocab, n);
      BigRational after = swfomc::grounding::GroundedWFOMC(
          rewritten.sentence, rewritten.vocabulary, n);
      std::printf("%-28s %2llu  %-24s %-24s %s\n", s.name,
                  static_cast<unsigned long long>(n),
                  before.ToString().c_str(), after.ToString().c_str(),
                  before == after ? "OK" : "MISMATCH");
    }
  }
}

void PrintNegationTable() {
  std::printf("\n-- Lemma 3.4 (negation removal; positive ∀* output) --\n");
  std::printf("%-36s %2s  %-20s %s\n", "sentence", "n", "WFOMC", "check");
  std::vector<Sentence> sentences = {
      {"forall x forall y (R(x,y) | !R(y,x))",
       "forall x forall y (R(x,y) | !R(y,x))", 3},
      {"forall x (!U(x) | R(x,x))", "forall x (!U(x) | R(x,x))", 3},
  };
  for (const Sentence& s : sentences) {
    swfomc::logic::Vocabulary vocab = BaseVocabulary();
    swfomc::logic::Formula phi = swfomc::logic::ParseStrict(s.text, vocab);
    swfomc::transforms::RewriteResult rewritten =
        swfomc::transforms::RemoveNegations(phi, vocab);
    for (std::uint64_t n = 1; n <= s.max_n; ++n) {
      BigRational before = swfomc::grounding::GroundedWFOMC(phi, vocab, n);
      BigRational after = swfomc::grounding::GroundedWFOMC(
          rewritten.sentence, rewritten.vocabulary, n);
      std::printf("%-36s %2llu  %-20s %s\n", s.name,
                  static_cast<unsigned long long>(n),
                  before.ToString().c_str(),
                  before == after ? "OK" : "MISMATCH");
    }
  }
}

void PrintEqualityTable() {
  std::printf("\n-- Lemma 3.5 (equality removal + coefficient recovery) "
              "--\n");
  std::printf("%-40s %2s  %-20s %s\n", "sentence", "n", "WFOMC", "check");
  std::vector<Sentence> sentences = {
      {"forall x forall y (R(x,y) | x = y)",
       "forall x forall y (R(x,y) | x = y)", 3},
      {"forall x forall y (x = y | !R(x,y) | U(x))",
       "forall x forall y (x = y | !R(x,y) | U(x))", 2},
  };
  for (const Sentence& s : sentences) {
    swfomc::logic::Vocabulary vocab = BaseVocabulary();
    swfomc::logic::Formula phi = swfomc::logic::ParseStrict(s.text, vocab);
    for (std::uint64_t n = 1; n <= s.max_n; ++n) {
      BigRational direct = swfomc::grounding::GroundedWFOMC(phi, vocab, n);
      BigRational recovered = swfomc::transforms::WFOMCViaEqualityRemoval(
          phi, vocab, n,
          [](const swfomc::logic::Formula& f,
             const swfomc::logic::Vocabulary& v, std::uint64_t m) {
            return swfomc::grounding::GroundedWFOMC(f, v, m);
          });
      std::printf("%-40s %2llu  %-20s %s\n", s.name,
                  static_cast<unsigned long long>(n),
                  direct.ToString().c_str(),
                  direct == recovered ? "OK" : "MISMATCH");
    }
  }
  std::printf("\nTimings: transform cost is sentence-level (tiny); the\n"
              "grounded verification dominates and the Lemma 3.5 recovery\n"
              "multiplies it by the number of interpolation points.\n\n");
}

void BM_Transforms_Skolemize(benchmark::State& state) {
  swfomc::logic::Vocabulary vocab = BaseVocabulary();
  swfomc::logic::Formula phi = swfomc::logic::ParseStrict(
      "forall x (U(x) -> exists y R(x,y))", vocab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(swfomc::transforms::Skolemize(phi, vocab));
  }
}
BENCHMARK(BM_Transforms_Skolemize);

void BM_Transforms_EqualityRecovery(benchmark::State& state) {
  std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  swfomc::logic::Vocabulary vocab = BaseVocabulary();
  swfomc::logic::Formula phi = swfomc::logic::ParseStrict(
      "forall x forall y (R(x,y) | x = y)", vocab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(swfomc::transforms::WFOMCViaEqualityRemoval(
        phi, vocab, n,
        [](const swfomc::logic::Formula& f,
           const swfomc::logic::Vocabulary& v, std::uint64_t m) {
          return swfomc::grounding::GroundedWFOMC(f, v, m);
        }));
  }
}
BENCHMARK(BM_Transforms_EqualityRecovery)->Arg(1)->Arg(2)->Arg(3);

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Lemmas 3.3-3.5: WFOMC-preserving transforms ==\n\n");
  PrintSkolemizationTable();
  PrintNegationTable();
  PrintEqualityTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
