// Ablation — DESIGN.md design choice #1: component decomposition and
// component caching in the DPLL weighted model counter.
//
// The grounded WFOMC path stands or falls with the propositional counter,
// so we measure DPLL with all four on/off combinations of
//   * connected-component decomposition,
//   * component caching,
// on grounded lineages of the paper's sentences. Lineages of symmetric
// sentences factor into many independent components (that structure is
// exactly what lifted algorithms exploit analytically), so decomposition
// is expected to dominate.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "grounding/grounded_wfomc.h"
#include "logic/parser.h"
#include "wmc/dpll_counter.h"

namespace {

using swfomc::wmc::DpllCounter;

struct Config {
  const char* name;
  DpllCounter::Options options;
};

const Config kConfigs[] = {
    {"components+cache", {.use_components = true, .use_cache = true}},
    {"components only", {.use_components = true, .use_cache = false}},
    {"cache only", {.use_components = false, .use_cache = true}},
    {"plain DPLL", {.use_components = false, .use_cache = false}},
};

struct Workload {
  const char* name;
  const char* sentence;
  std::uint64_t n;
};

const Workload kWorkloads[] = {
    {"table1 n=3", "forall x forall y (R(x) | S(x,y) | T(y))", 3},
    {"forall-exists n=3", "forall x exists y S(x,y)", 3},
    {"triangle n=3",
     "exists x exists y exists z (S(x,y) & S(y,z) & S(z,x))", 3},
};

void PrintTable() {
  std::printf("== Ablation: DPLL component decomposition and caching ==\n\n");
  std::printf("%-20s %-20s %10s %10s %12s %10s\n", "workload", "config",
              "decisions", "units", "components", "cache hits");
  for (const Workload& w : kWorkloads) {
    for (const Config& c : kConfigs) {
      swfomc::logic::Vocabulary vocab;
      swfomc::logic::Formula phi = swfomc::logic::Parse(w.sentence, &vocab);
      DpllCounter::Stats stats;
      swfomc::grounding::GroundedWFOMC(phi, vocab, w.n, c.options, &stats);
      std::printf("%-20s %-20s %10llu %10llu %12llu %10llu\n", w.name,
                  c.name,
                  static_cast<unsigned long long>(stats.decisions),
                  static_cast<unsigned long long>(stats.unit_propagations),
                  static_cast<unsigned long long>(stats.component_splits),
                  static_cast<unsigned long long>(stats.cache_hits));
    }
  }
  std::printf("\nSearch-space statistics above, wall-clock timings below.\n"
              "The decisions column is the ablation's headline: component\n"
              "decomposition turns a product of k independent subproblems\n"
              "from multiplicative into additive work.\n\n");
}

void RunConfig(benchmark::State& state, const DpllCounter::Options& options,
               const char* sentence, std::uint64_t n) {
  swfomc::logic::Vocabulary vocab;
  swfomc::logic::Formula phi = swfomc::logic::Parse(sentence, &vocab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        swfomc::grounding::GroundedWFOMC(phi, vocab, n, options));
  }
}

void BM_Ablation_Full(benchmark::State& state) {
  RunConfig(state, kConfigs[0].options, kWorkloads[0].sentence,
            static_cast<std::uint64_t>(state.range(0)));
}
BENCHMARK(BM_Ablation_Full)->Arg(2)->Arg(3);

void BM_Ablation_ComponentsOnly(benchmark::State& state) {
  RunConfig(state, kConfigs[1].options, kWorkloads[0].sentence,
            static_cast<std::uint64_t>(state.range(0)));
}
BENCHMARK(BM_Ablation_ComponentsOnly)->Arg(2)->Arg(3);

void BM_Ablation_CacheOnly(benchmark::State& state) {
  RunConfig(state, kConfigs[2].options, kWorkloads[0].sentence,
            static_cast<std::uint64_t>(state.range(0)));
}
BENCHMARK(BM_Ablation_CacheOnly)->Arg(2)->Arg(3);

void BM_Ablation_PlainDpll(benchmark::State& state) {
  RunConfig(state, kConfigs[3].options, kWorkloads[0].sentence,
            static_cast<std::uint64_t>(state.range(0)));
}
BENCHMARK(BM_Ablation_PlainDpll)->Arg(2)->Arg(3);

// The counter's stress workload: grounded triangle lineages blow up
// combinatorially with n, so this is where trail-based search and the
// hashed component cache pay off. n=5 is the perf-tracking headline
// (BENCH_wmc.json) that successive PRs compare against.
void BM_Ablation_Full_Triangle(benchmark::State& state) {
  RunConfig(state, kConfigs[0].options, kWorkloads[2].sentence,
            static_cast<std::uint64_t>(state.range(0)));
}
BENCHMARK(BM_Ablation_Full_Triangle)
    ->Arg(3)
    ->Arg(4)
    ->Arg(5)
    ->Unit(benchmark::kMillisecond);

void BM_Ablation_Full_Table1Large(benchmark::State& state) {
  RunConfig(state, kConfigs[0].options, kWorkloads[0].sentence,
            static_cast<std::uint64_t>(state.range(0)));
}
BENCHMARK(BM_Ablation_Full_Table1Large)
    ->Arg(6)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Thread ablation on the headline instance: num_threads is the second
// range argument (1 = the sequential counter, no pool). Counts are
// bit-identical across rows by construction; only wall-clock moves, and
// it only moves on multi-core runners — on a single hardware thread the
// parallel rows measure the pool's overhead (which the fork thresholds
// keep small).
void BM_Ablation_Full_Triangle_Threads(benchmark::State& state) {
  DpllCounter::Options options = kConfigs[0].options;
  options.num_threads = static_cast<unsigned>(state.range(1));
  RunConfig(state, options, kWorkloads[2].sentence,
            static_cast<std::uint64_t>(state.range(0)));
}
BENCHMARK(BM_Ablation_Full_Triangle_Threads)
    ->Args({4, 1})
    ->Args({4, 2})
    ->Args({4, 4})
    ->Args({5, 1})
    ->Args({5, 2})
    ->Args({5, 4})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();  // wall-clock, not summed per-thread CPU time

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
