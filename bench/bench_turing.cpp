// E7 — Lemma 3.9 / Appendix B: encoding counting Turing machines in FO³.
//
// The paper's #P1-hardness (Theorem 3.1) rests on FOMC(Θ1, n) = n! ·
// #accepting-computations(U1, n). U1 itself is a diagonalization artifact;
// the computational content is the encoder, which we exercise on concrete
// machines: the bench grounds Θ1, counts with DPLL, and verifies the
// identity against the direct TM simulator. The Lemma 3.8 pairing
// function e(i, j) is also demonstrated (properties (a)-(c)).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "grounding/grounded_wfomc.h"
#include "numeric/combinatorics.h"
#include "tm/encoder.h"
#include "tm/machine.h"
#include "tm/pairing.h"
#include "tm/simulator.h"

namespace {

using swfomc::numeric::BigInt;
using swfomc::tm::CountingTuringMachine;

struct Machine {
  const char* name;
  CountingTuringMachine machine;
  std::uint64_t max_n;  // grounding cost cap
};

std::vector<Machine> Machines() {
  return {
      {"always-accept", swfomc::tm::AlwaysAcceptMachine(), 3},
      {"branching (2^(n-1))", swfomc::tm::BranchingMachine(), 3},
      {"parity", swfomc::tm::ParityMachine(), 3},
      {"two-tape branching", swfomc::tm::TwoTapeBranchingMachine(), 2},
  };
}

void PrintTable() {
  std::printf("== Lemma 3.9 / Appendix B: FOMC(Theta1, n) = n! * "
              "#accepting(n) ==\n\n");
  std::printf("%-22s %2s  %-12s %-16s %-12s %s\n", "machine", "n",
              "#accepting", "FOMC(Theta1,n)", "FOMC / n!", "check");
  for (Machine& entry : Machines()) {
    swfomc::tm::EncodedMachine encoded =
        swfomc::tm::EncodeMachine(entry.machine);
    for (std::uint64_t n = 1; n <= entry.max_n; ++n) {
      BigInt simulated =
          swfomc::tm::CountAcceptingComputations(entry.machine, n);
      BigInt fomc = swfomc::grounding::GroundedFOMC(
          encoded.theta, encoded.vocabulary, n);
      BigInt recovered = fomc / swfomc::numeric::Factorial(n);
      std::printf("%-22s %2llu  %-12s %-16s %-12s %s\n", entry.name,
                  static_cast<unsigned long long>(n),
                  simulated.ToString().c_str(), fomc.ToString().c_str(),
                  recovered.ToString().c_str(),
                  recovered == simulated ? "OK" : "MISMATCH");
    }
  }

  std::printf("\n-- Lemma 3.8 pairing function e(i,j) = 2^i 3^(4i ceil(log3 "
              "j)) (6j+1) --\n");
  std::printf("%3s %3s  %-22s %s\n", "i", "j", "e(i,j)", "decode check");
  for (std::uint64_t i : {1ULL, 2ULL, 3ULL}) {
    for (std::uint64_t j : {1ULL, 2ULL, 5ULL}) {
      BigInt encoded = swfomc::tm::PairingEncode(i, j);
      auto [di, dj] = swfomc::tm::PairingDecode(encoded);
      std::printf("%3llu %3llu  %-22s %s\n",
                  static_cast<unsigned long long>(i),
                  static_cast<unsigned long long>(j),
                  encoded.ToString().c_str(),
                  (di == i && dj == j) ? "OK" : "MISMATCH");
    }
  }
  std::printf("\nTimings: grounding cost of the Theta1 encoding per domain "
              "size (the FO3 sentence is fixed; cost is the #P1 part).\n\n");
}

void BM_Turing_Simulator(benchmark::State& state) {
  std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  CountingTuringMachine machine = swfomc::tm::BranchingMachine();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        swfomc::tm::CountAcceptingComputations(machine, n));
  }
}
BENCHMARK(BM_Turing_Simulator)->Arg(2)->Arg(4)->Arg(8)->Arg(12);

void BM_Turing_GroundedTheta1(benchmark::State& state) {
  std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  CountingTuringMachine machine = swfomc::tm::AlwaysAcceptMachine();
  swfomc::tm::EncodedMachine encoded = swfomc::tm::EncodeMachine(machine);
  for (auto _ : state) {
    benchmark::DoNotOptimize(swfomc::grounding::GroundedFOMC(
        encoded.theta, encoded.vocabulary, n));
  }
}
BENCHMARK(BM_Turing_GroundedTheta1)->Arg(1)->Arg(2)->Arg(3);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
