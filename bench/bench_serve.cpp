// The economics of `swfomc serve` — what the daemon's compile-once cache
// actually buys over one-shot processes.
//
// Three rows on the triangle family (FO3, grounded route — a real
// compile, not a closed form):
//
//   WarmQuery    one request against a hot circuit: the steady-state
//                serving latency, with p50/p95/p99 tail counters.
//   ColdCompile  the same request against a fresh server: compile +
//                evaluate, the first-query latency.
//   ColdProcess  the pre-daemon baseline: one whole `swfomc run`
//                process per query (needs SWFOMC_CLI, which
//                scripts/bench.sh exports; the row is skipped without
//                it).
//
// The acceptance bar for the daemon is WarmQuery >= 10x below
// ColdProcess; BENCH_wmc.json records all three so the gap is audited
// by every PR. A fourth row measures batching: eight weight vectors
// answered by one request, reported as vectors/second.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "serve/server.h"

namespace {

using swfomc::serve::Server;
using swfomc::serve::ServerOptions;

constexpr const char* kTriangleQuery =
    R"js({"sentence": "exists x exists y exists z (S(x,y) & S(y,z) & S(z,x))",
          "domain": 4, "weights": [{"S": ["2", "1"]}]})js";

// Eight rational reweightings of the same circuit in one request.
constexpr const char* kTriangleBatch =
    R"js({"sentence": "exists x exists y exists z (S(x,y) & S(y,z) & S(z,x))",
          "domain": 4,
          "weights": [{"S": ["1", "1"]}, {"S": ["2", "1"]},
                      {"S": ["3", "1"]}, {"S": ["1/2", "1"]},
                      {"S": ["1/3", "2"]}, {"S": ["5", "2"]},
                      {"S": ["7", "3"]}, {"S": ["2/7", "1"]}]})js";

void ReportPercentiles(benchmark::State& state,
                       std::vector<double>* seconds) {
  if (seconds->empty()) return;
  std::sort(seconds->begin(), seconds->end());
  auto at = [&](double q) {
    std::size_t index = static_cast<std::size_t>(q * (seconds->size() - 1));
    return (*seconds)[index];
  };
  state.counters["p50_us"] = at(0.50) * 1e6;
  state.counters["p95_us"] = at(0.95) * 1e6;
  state.counters["p99_us"] = at(0.99) * 1e6;
}

// Steady state: the circuit is compiled before timing starts, so every
// iteration is parse-request + cache hit + one circuit pass.
void BM_Serve_WarmQuery_Triangle(benchmark::State& state) {
  Server server;
  server.HandleLine(kTriangleQuery);  // prime the cache
  std::vector<double> seconds;
  for (auto _ : state) {
    auto start = std::chrono::steady_clock::now();
    Server::Reply reply = server.HandleLine(kTriangleQuery);
    auto elapsed = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start);
    benchmark::DoNotOptimize(reply.json);
    state.SetIterationTime(elapsed.count());
    seconds.push_back(elapsed.count());
  }
  ReportPercentiles(state, &seconds);
}
BENCHMARK(BM_Serve_WarmQuery_Triangle)
    ->UseManualTime()
    ->Unit(benchmark::kMicrosecond);

// First-query latency: a fresh server per iteration, so the compile is
// inside the timed region. WarmQuery / ColdCompile is the in-process
// amortization factor.
void BM_Serve_ColdCompile_Triangle(benchmark::State& state) {
  for (auto _ : state) {
    Server server;
    Server::Reply reply = server.HandleLine(kTriangleQuery);
    benchmark::DoNotOptimize(reply.json);
  }
}
BENCHMARK(BM_Serve_ColdCompile_Triangle)->Unit(benchmark::kMillisecond);

// The baseline the daemon replaces: one whole CLI process per query
// (fork + exec + parse + count + report). scripts/bench.sh exports
// SWFOMC_CLI; without it the row is skipped rather than silently
// measuring the wrong thing.
void BM_Serve_ColdProcess_Run_Triangle(benchmark::State& state) {
  const char* cli = std::getenv("SWFOMC_CLI");
  if (cli == nullptr || *cli == '\0') {
    state.SkipWithError("SWFOMC_CLI not set (see scripts/bench.sh)");
    return;
  }
  const std::string model_path = "bench_serve_triangle.model";
  {
    std::ofstream model(model_path);
    model << "sentence exists x exists y exists z"
             " (S(x,y) & S(y,z) & S(z,x))\n"
          << "domain 4\n"
          << "weight S 2 1\n";
  }
  const std::string command =
      std::string(cli) + " run --compact " + model_path + " > /dev/null 2>&1";
  for (auto _ : state) {
    int code = std::system(command.c_str());
    if (code != 0) {
      state.SkipWithError("swfomc run failed");
      break;
    }
  }
  std::remove(model_path.c_str());
}
BENCHMARK(BM_Serve_ColdProcess_Run_Triangle)->Unit(benchmark::kMillisecond);

// Batch amortization: eight reweightings of one hot circuit in a single
// request. vectors_per_second is the number a sweep client sees.
void BM_Serve_WarmBatch_Triangle(benchmark::State& state) {
  Server server;
  server.HandleLine(kTriangleBatch);  // prime the cache
  for (auto _ : state) {
    Server::Reply reply = server.HandleLine(kTriangleBatch);
    benchmark::DoNotOptimize(reply.json);
  }
  state.counters["vectors_per_second"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 8.0,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Serve_WarmBatch_Triangle)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
