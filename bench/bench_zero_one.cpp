// E10 — Section 1, "0-1 Laws": µ_n(Φ) computed exactly.
//
// µ_n(Φ) is the fraction of labeled structures over [n] satisfying Φ.
// Fagin's 0-1 law says µ_n(Φ) converges to 0 or 1 for every FO sentence;
// the paper's #P1-hardness result shows there is no *elementary* proof by
// closed-form counting (no closed formula for FOMC(Φ, n) is computable in
// general). Here we do what can be done: compute µ_n exactly with
// BigRational for a basket of sentences via the lifted FO² engine and
// watch the convergence direction.
//
// Note: the paper's intro misstates the limit for ∀x∃y R(x,y) as 0; the
// correct value of (2^n-1)^n / 2^(n^2) = (1 - 2^-n)^n is -> 1 (consistent
// with Fagin's law: the extension axiom side wins). EXPERIMENTS.md
// discusses the discrepancy; the code reports the computed truth.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "closedforms/closed_forms.h"
#include "fo2/cell_algorithm.h"
#include "logic/parser.h"

namespace {

using swfomc::numeric::BigRational;

struct Sentence {
  const char* text;
  const char* expected_limit;
  std::uint64_t max_n;  // sized to the sentence's 1-type count
};

swfomc::logic::Vocabulary UnitVocabulary() {
  swfomc::logic::Vocabulary vocab;
  vocab.AddRelation("R", 2);
  vocab.AddRelation("U", 1);
  return vocab;
}

double ToDouble(const BigRational& value) { return value.ToDouble(); }

void PrintTable() {
  std::printf("== Section 1: 0-1 laws, mu_n(Phi) computed exactly ==\n\n");
  std::vector<Sentence> sentences = {
      {"forall x exists y R(x,y)", "1", 32},
      {"exists x forall y !R(x,y)", "0", 16},
      {"exists y U(y)", "1", 32},
      {"forall x U(x)", "0", 32},
      {"forall x R(x,x)", "0", 32},
      {"exists x exists y (x != y & R(x,y) & R(y,x))", "1", 8},
      {"forall x forall y (R(x,y) -> R(y,x))", "0", 32},
  };
  std::printf("%-46s %-10s %s\n", "sentence", "limit", "mu_n for n = "
              "1, 2, 4, 8, ... (doubling up to the per-sentence cap)");
  for (const Sentence& s : sentences) {
    swfomc::logic::Vocabulary vocab = UnitVocabulary();
    swfomc::logic::Formula phi = swfomc::logic::ParseStrict(s.text, vocab);
    std::printf("%-46s %-10s", s.text, s.expected_limit);
    for (std::uint64_t n = 1; n <= s.max_n; n *= 2) {
      BigRational mu = swfomc::fo2::LiftedProbability(phi, vocab, n);
      std::printf(" %.6f", ToDouble(mu));
    }
    std::printf("\n");
  }

  std::printf("\n-- The intro's worked example, exactly --\n");
  std::printf("%4s  %-24s %s\n", "n", "FOMC(forall x exists y R)",
              "mu_n = (2^n-1)^n / 2^(n^2)");
  for (std::uint64_t n : {1ULL, 2ULL, 3ULL, 4ULL, 8ULL, 16ULL}) {
    swfomc::numeric::BigInt count =
        swfomc::closedforms::ForallExistsFOMC(n);
    BigRational mu(count, swfomc::closedforms::WorldCount(n * n));
    std::printf("%4llu  %-24s %.9f\n", static_cast<unsigned long long>(n),
                count.ToString().c_str(), ToDouble(mu));
  }
  std::printf("\nEvery mu_n above is an exact rational; the printed\n"
              "decimals are display-only. Timings: exact mu_n via the\n"
              "lifted engine as n grows.\n\n");
}

void BM_ZeroOne_LiftedMu(benchmark::State& state) {
  std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  swfomc::logic::Vocabulary vocab = UnitVocabulary();
  swfomc::logic::Formula phi =
      swfomc::logic::ParseStrict("forall x exists y R(x,y)", vocab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(swfomc::fo2::LiftedProbability(phi, vocab, n));
  }
}
BENCHMARK(BM_ZeroOne_LiftedMu)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_ZeroOne_ClosedForm(benchmark::State& state) {
  std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(swfomc::closedforms::ForallExistsFOMC(n));
  }
}
BENCHMARK(BM_ZeroOne_ClosedForm)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
