// E3 — Table 2: the paper's open problems. For each conjecturally-hard
// formula we compute the exact FOMC sequence for small n with the grounded
// engine (no lifted algorithm exists — that is the point), print growth
// ratios, and cross-check the sequences that have independent references
// (e.g. transitivity is OEIS A006905: labeled transitive digraphs... here
// transitive *relations*).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "grounding/grounded_wfomc.h"
#include "logic/parser.h"

namespace {

using swfomc::numeric::BigInt;

struct OpenProblem {
  const char* name;
  const char* sentence;
  std::uint64_t max_n;  // grounded is exponential; keep honest but finite
};

const OpenProblem kProblems[] = {
    {"untyped triangles", "exists x exists y exists z (R(x,y) & R(y,z) & R(z,x))", 3},
    {"typed triangles (3-cycle)",
     "exists x exists y exists z (R(x,y) & S(y,z) & T(z,x))", 3},
    {"4-cycle",
     "exists x1 exists x2 exists x3 exists x4 "
     "(R1(x1,x2) & R2(x2,x3) & R3(x3,x4) & R4(x4,x1))", 2},
    {"transitivity",
     "forall x forall y forall z ((E(x,y) & E(y,z)) => E(x,z))", 4},
    {"homophily",
     "forall x forall y forall z ((R(x,y) & S(x,z)) => R(z,y))", 2},
    {"extension axiom (simplified)",
     "forall x1 forall x2 forall x3 ((x1 != x2 & x1 != x3 & x2 != x3) => "
     "exists y (E(x1,y) & E(x2,y) & E(x3,y)))", 4},
};

void PrintTable() {
  std::printf("== Table 2: open problems — exact FOMC sequences ==\n");
  std::printf("(no lifted algorithm is known for any of these; values "
              "come from the grounded exact counter)\n\n");
  for (const OpenProblem& problem : kProblems) {
    swfomc::logic::Vocabulary vocab;
    swfomc::logic::Formula f = swfomc::logic::Parse(problem.sentence, &vocab);
    std::printf("%s:\n  %s\n  FOMC(n=1..%llu): ", problem.name,
                problem.sentence,
                static_cast<unsigned long long>(problem.max_n));
    std::vector<BigInt> values;
    for (std::uint64_t n = 1; n <= problem.max_n; ++n) {
      values.push_back(swfomc::grounding::GroundedFOMC(f, vocab, n));
      std::printf("%s%s", n > 1 ? ", " : "",
                  values.back().ToString().c_str());
    }
    std::printf("\n");
    if (values.size() >= 2 && !values[values.size() - 2].IsZero()) {
      std::printf("  growth ratio (last/prev): %.3g\n",
                  values.back().ToDouble() /
                      values[values.size() - 2].ToDouble());
    }
    std::printf("\n");
  }
  std::printf("Reference points: transitivity n=1..4 must be 2, 13, 171, "
              "3994 (OEIS A006905) — checked in tests/table2 sequence "
              "tests.\n\n");
}

void BM_Table2_Transitivity(benchmark::State& state) {
  std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  swfomc::logic::Vocabulary vocab;
  swfomc::logic::Formula f = swfomc::logic::Parse(
      "forall x forall y forall z ((E(x,y) & E(y,z)) => E(x,z))", &vocab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(swfomc::grounding::GroundedFOMC(f, vocab, n));
  }
}
BENCHMARK(BM_Table2_Transitivity)->Arg(2)->Arg(3)->Arg(4);

void BM_Table2_UntypedTriangles(benchmark::State& state) {
  std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  swfomc::logic::Vocabulary vocab;
  swfomc::logic::Formula f = swfomc::logic::Parse(
      "exists x exists y exists z (R(x,y) & R(y,z) & R(z,x))", &vocab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(swfomc::grounding::GroundedFOMC(f, vocab, n));
  }
}
BENCHMARK(BM_Table2_UntypedTriangles)->Arg(2)->Arg(3);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
