// Baseline — Section 1: MC-SAT / SampleSAT (what today's MLN systems run)
// versus exact inference through the WFOMC reduction.
//
// The paper's motivation for studying symmetric WFOMC is that MC-SAT's
// convergence guarantee needs a uniform SAT sampler, but implementations
// use SampleSAT, which has no uniformity guarantee and is known to
// produce inaccurate estimates. This bench quantifies that on networks
// where the exact answer is computable: estimate error vs sample budget,
// and the cost split between the sampler and the exact path.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "logic/parser.h"
#include "mcsat/mcsat.h"
#include "mln/mln.h"
#include "mln/reduction.h"

namespace {

using swfomc::numeric::BigRational;

swfomc::mln::MarkovLogicNetwork SpouseNetwork() {
  swfomc::logic::Vocabulary vocab;
  vocab.AddRelation("Spouse", 2);
  vocab.AddRelation("Female", 1);
  vocab.AddRelation("Male", 1);
  swfomc::mln::MarkovLogicNetwork network(std::move(vocab));
  network.AddSoft(BigRational(3), "(Spouse(x,y) & Female(x)) -> Male(y)");
  return network;
}

swfomc::mcsat::McSatOptions SamplerOptions(std::uint64_t seed,
                                           std::uint64_t samples) {
  swfomc::mcsat::McSatOptions options;
  options.seed = seed;
  options.burn_in = 100;
  options.samples = samples;
  options.walksat.max_flips = 2000;
  options.walksat.max_tries = 5;
  return options;
}

void PrintTable() {
  std::printf("== Section 1: MC-SAT (approximate) vs WFOMC (exact) ==\n\n");
  swfomc::mln::MarkovLogicNetwork network = SpouseNetwork();
  const char* queries[] = {"exists x Female(x)",
                           "forall y Male(y)",
                           "exists x exists y Spouse(x,y)"};
  std::uint64_t n = 2;
  std::printf("domain size n = %llu, network: (3, Spouse(x,y) & Female(x) "
              "-> Male(y))\n\n", static_cast<unsigned long long>(n));
  std::printf("%-30s %-10s %-26s %s\n", "query", "exact",
              "MC-SAT estimate (by #samples)", "abs error");
  for (const char* text : queries) {
    swfomc::logic::Formula query =
        swfomc::logic::ParseStrict(text, network.vocabulary());
    double exact =
        swfomc::mln::ProbabilityViaWFOMC(network, query, n).ToDouble();
    std::printf("%-30s %-10.6f", text, exact);
    for (std::uint64_t samples : {100ULL, 1000ULL, 5000ULL}) {
      swfomc::mcsat::McSatSampler sampler(network, n,
                                          SamplerOptions(42, samples));
      double estimate = sampler.EstimateProbability(query);
      std::printf(" %8.4f", estimate);
    }
    {
      swfomc::mcsat::McSatSampler sampler(network, n,
                                          SamplerOptions(42, 5000));
      double estimate = sampler.EstimateProbability(query);
      std::printf("   %.4f\n", std::fabs(estimate - exact));
    }
  }
  std::printf(
      "\nThe estimate drifts toward the exact value with more samples but\n"
      "carries SampleSAT's non-uniformity bias; the exact WFOMC path is\n"
      "deterministic and exact for every query (the paper's argument for\n"
      "reducing MLN inference to symmetric WFOMC). Timings below.\n\n");
}

void BM_McSat_Estimate(benchmark::State& state) {
  std::uint64_t samples = static_cast<std::uint64_t>(state.range(0));
  swfomc::mln::MarkovLogicNetwork network = SpouseNetwork();
  swfomc::logic::Formula query = swfomc::logic::ParseStrict(
      "exists x Female(x)", network.vocabulary());
  for (auto _ : state) {
    swfomc::mcsat::McSatSampler sampler(network, 2,
                                        SamplerOptions(7, samples));
    benchmark::DoNotOptimize(sampler.EstimateProbability(query));
  }
}
BENCHMARK(BM_McSat_Estimate)->Arg(100)->Arg(1000)->Arg(5000);

void BM_McSat_ExactViaWFOMC(benchmark::State& state) {
  std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  swfomc::mln::MarkovLogicNetwork network = SpouseNetwork();
  swfomc::logic::Formula query = swfomc::logic::ParseStrict(
      "exists x Female(x)", network.vocabulary());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        swfomc::mln::ProbabilityViaWFOMC(network, query, n));
  }
}
BENCHMARK(BM_McSat_ExactViaWFOMC)->Arg(2)->Arg(3);

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
