// Knowledge compilation — compile-once-evaluate-N vs. recount-N.
//
// The serving scenario the nnf subsystem exists for: the same sentence is
// queried with many weight vectors (learning loops, per-tenant weights).
// The baseline recounts the grounded lineage from scratch per vector; the
// compiled path runs the exponential search once, keeps the trace as a
// d-DNNF circuit, and answers every further vector with one linear
// circuit pass. Rows come in matched pairs
//
//   BM_Nnf_Recount/<n>/<vectors>      N grounded recounts
//   BM_Nnf_CompileEval/<n>/<vectors>  1 compile + N circuit evaluations
//
// on the triangle family (the counter's stress workload, FO3 so grounded
// is the only engine). BM_Nnf_EvaluateOnly isolates the per-vector
// marginal cost. The headline (BENCH_wmc.json): at n=4 with 100 vectors,
// compile-once must beat recounting by well over the 5x the roadmap's
// serving story needs.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "api/engine.h"
#include "logic/parser.h"
#include "nnf/circuit.h"
#include "numeric/rational.h"

namespace {

using swfomc::api::CompiledQuery;
using swfomc::api::Engine;
using swfomc::api::Method;
using swfomc::api::RelationWeights;
using swfomc::numeric::BigRational;

constexpr const char* kTriangle =
    "exists x exists y exists z (S(x,y) & S(y,z) & S(z,x))";

// Deterministic weight schedule: the k-th vector is (k+1, 1/(k+2)) — all
// distinct, all exercising non-trivial rational arithmetic.
RelationWeights WeightVector(std::int64_t k) {
  return {"S", BigRational(k + 1), BigRational::Fraction(1, k + 2)};
}

struct TriangleFixture {
  swfomc::logic::Vocabulary vocabulary;
  swfomc::logic::Formula sentence;

  TriangleFixture()
      : sentence(swfomc::logic::Parse(kTriangle, &vocabulary)) {}
};

void BM_Nnf_Recount(benchmark::State& state) {
  TriangleFixture fixture;
  std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  std::int64_t vectors = state.range(1);
  for (auto _ : state) {
    for (std::int64_t k = 0; k < vectors; ++k) {
      RelationWeights weights = WeightVector(k);
      swfomc::logic::Vocabulary reweighted = fixture.vocabulary;
      reweighted.SetWeights(reweighted.Require("S"), weights.positive,
                            weights.negative);
      Engine engine(reweighted);
      benchmark::DoNotOptimize(
          engine.WFOMC(fixture.sentence, n, Method::kGrounded).value);
    }
  }
}
BENCHMARK(BM_Nnf_Recount)
    ->Args({4, 100})
    ->Args({5, 10})
    ->Unit(benchmark::kMillisecond);

void BM_Nnf_CompileEval(benchmark::State& state) {
  TriangleFixture fixture;
  std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  std::int64_t vectors = state.range(1);
  swfomc::nnf::Circuit::EvalArena arena;
  for (auto _ : state) {
    Engine engine(fixture.vocabulary);
    CompiledQuery compiled = engine.Compile(fixture.sentence, n);
    for (std::int64_t k = 0; k < vectors; ++k) {
      benchmark::DoNotOptimize(compiled.Evaluate({WeightVector(k)}, &arena));
    }
  }
}
BENCHMARK(BM_Nnf_CompileEval)
    ->Args({4, 100})
    ->Args({5, 10})
    ->Unit(benchmark::kMillisecond);

// The marginal cost of one more weight vector once compiled — the number
// to quote for serving throughput (queries/second = 1 / this). Serving
// form: one EvalArena reused across calls, as a real serving loop would.
void BM_Nnf_EvaluateOnly(benchmark::State& state) {
  TriangleFixture fixture;
  Engine engine(fixture.vocabulary);
  CompiledQuery compiled =
      engine.Compile(fixture.sentence,
                     static_cast<std::uint64_t>(state.range(0)));
  swfomc::nnf::Circuit::EvalArena arena;
  std::int64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        compiled.Evaluate({WeightVector(k++ % 100)}, &arena));
  }
}
BENCHMARK(BM_Nnf_EvaluateOnly)
    ->Arg(4)
    ->Arg(5)
    ->Unit(benchmark::kMillisecond);

void PrintTable() {
  std::printf(
      "== Knowledge compilation: circuit sizes on the triangle family "
      "==\n\n");
  std::printf("%4s %10s %10s %10s %8s %12s %12s\n", "n", "vars", "nodes",
              "edges", "depth", "cache hits", "wfomc check");
  for (std::uint64_t n = 2; n <= 5; ++n) {
    TriangleFixture fixture;
    Engine engine(fixture.vocabulary);
    CompiledQuery compiled = engine.Compile(fixture.sentence, n);
    auto stats = compiled.circuit().ComputeStats();
    bool check = compiled.Evaluate() == compiled.compile_count();
    std::printf("%4llu %10u %10llu %10llu %8llu %12llu %12s\n",
                static_cast<unsigned long long>(n),
                compiled.circuit().variable_count(),
                static_cast<unsigned long long>(stats.nodes),
                static_cast<unsigned long long>(stats.edges),
                static_cast<unsigned long long>(stats.depth),
                static_cast<unsigned long long>(
                    compiled.compile_stats().cache_hits),
                check ? "ok" : "MISMATCH");
  }
  std::printf(
      "\nTimings below: Recount = N grounded counts, CompileEval = one\n"
      "compile + N circuit evaluations, EvaluateOnly = the per-vector\n"
      "marginal cost after compiling.\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
