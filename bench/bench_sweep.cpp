// Domain-size sweep benchmarks — the workload of the paper's experiments
// (evaluate one sentence at every n in a range) and the motivation for
// Engine::WFOMCSweep. Two comparisons:
//
//   * sweep vs. point-by-point loop on the lifted path: the sweep builds
//     the Scott/Skolem universal form once and shares one binomial table
//     across all points, the loop redoes both per point;
//   * sweep thread scaling on the grounded path: sweep points are
//     independent grounded counts and run concurrently on the pool
//     (threads > 1 only helps on multi-core hardware; results are
//     bit-identical everywhere).
//
// SWFOMC_BENCH_THREADS overrides the parallel rows' thread count
// (default 4) — scripts/bench.sh plumbs it through.

#include <benchmark/benchmark.h>

#include <cstdlib>

#include "api/engine.h"
#include "logic/parser.h"
#include "logic/vocabulary.h"

namespace {

using swfomc::api::Engine;
using swfomc::api::Method;

unsigned BenchThreads() {
  static unsigned threads = [] {
    const char* env = std::getenv("SWFOMC_BENCH_THREADS");
    if (env == nullptr || *env == '\0') return 4u;
    unsigned value = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
    return value == 0 ? 4u : value;
  }();
  return threads;
}

// Few 1-types, so the composition sum stays tractable up to n ≈ 48 (the
// Table 1 sentence's extra unary predicates cap it at n ≈ 16).
constexpr const char* kLiftedSentence = "forall x exists y S(x,y)";
constexpr const char* kGroundedSentence =
    "exists x exists y exists z (S(x,y) & S(y,z) & S(z,x))";

void BM_Sweep_Lifted_PointLoop(benchmark::State& state) {
  std::uint64_t n_hi = static_cast<std::uint64_t>(state.range(0));
  swfomc::logic::Vocabulary vocab;
  Engine engine(vocab);
  swfomc::logic::Formula phi = engine.Parse(kLiftedSentence);
  for (auto _ : state) {
    for (std::uint64_t n = 1; n <= n_hi; ++n) {
      benchmark::DoNotOptimize(engine.WFOMC(phi, n, Method::kLiftedFO2));
    }
  }
}
BENCHMARK(BM_Sweep_Lifted_PointLoop)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_Sweep_Lifted_Batched(benchmark::State& state) {
  std::uint64_t n_hi = static_cast<std::uint64_t>(state.range(0));
  swfomc::logic::Vocabulary vocab;
  Engine engine(vocab);
  swfomc::logic::Formula phi = engine.Parse(kLiftedSentence);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.WFOMCSweep(phi, 1, n_hi, Method::kLiftedFO2));
  }
}
BENCHMARK(BM_Sweep_Lifted_Batched)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

void RunGroundedSweep(benchmark::State& state, unsigned threads) {
  std::uint64_t n_hi = static_cast<std::uint64_t>(state.range(0));
  swfomc::logic::Vocabulary vocab;
  Engine engine(vocab, Engine::Options{threads});
  swfomc::logic::Formula phi = engine.Parse(kGroundedSentence);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.WFOMCSweep(phi, 1, n_hi, Method::kGrounded));
  }
}

void BM_Sweep_Grounded_Sequential(benchmark::State& state) {
  RunGroundedSweep(state, 1);
}
BENCHMARK(BM_Sweep_Grounded_Sequential)
    ->Arg(4)
    ->Arg(5)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_Sweep_Grounded_Pooled(benchmark::State& state) {
  RunGroundedSweep(state, BenchThreads());
}
BENCHMARK(BM_Sweep_Grounded_Pooled)
    ->Arg(4)
    ->Arg(5)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
