// Numeric layer microbenchmarks — the arithmetic the counters live in.
//
// The BigInt/Rational hot paths this file pins down:
//
//   BM_Numeric_SmallChain         int64-range add/mul chains that must
//                                 never leave the inline representation
//   BM_Numeric_BoundaryStraddle   products near ±2^62 that promote to
//                                 heap limbs and demote back on divide
//   BM_Numeric_BigMulDiv          multi-limb multiply + divide (the
//                                 schoolbook/Karatsuba regime)
//   BM_Numeric_RationalEager      a counter-shaped accumulation with one
//                                 gcd reduction per operation
//   BM_Numeric_RationalDeferred   the same accumulation through
//                                 RationalAccumulator — gcd deferred to
//                                 one final canonicalization
//
// Eager vs. deferred is the row pair that justifies the counter's
// accumulator plumbing; SmallChain vs. BoundaryStraddle isolates what the
// inline word buys before any heap work starts.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "numeric/bigint.h"
#include "numeric/rational.h"

namespace {

using swfomc::numeric::BigInt;
using swfomc::numeric::BigRational;
using swfomc::numeric::RationalAccumulator;

// Deterministic small operands (no <random> so rows are exactly
// reproducible across standard libraries).
std::vector<std::int64_t> SmallOperands(std::size_t count) {
  std::vector<std::int64_t> values;
  values.reserve(count);
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (std::size_t i = 0; i < count; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    values.push_back(static_cast<std::int64_t>(x % 2001) - 1000);
  }
  return values;
}

void BM_Numeric_SmallChain(benchmark::State& state) {
  std::vector<std::int64_t> operands = SmallOperands(256);
  for (auto _ : state) {
    BigInt accumulator(1);
    for (std::int64_t value : operands) {
      accumulator += BigInt(value);
      accumulator *= BigInt(3);
      accumulator -= BigInt(value * 2);
      accumulator = accumulator / BigInt(3);  // keeps the chain inline
    }
    benchmark::DoNotOptimize(accumulator);
  }
}
BENCHMARK(BM_Numeric_SmallChain);

void BM_Numeric_BoundaryStraddle(benchmark::State& state) {
  // Each step promotes (product of two near-2^62 words needs two limbs)
  // and demotes (the divide lands back inside the inline word).
  constexpr std::int64_t kNearBoundary = (std::int64_t{1} << 62) - 3;
  BigInt a(kNearBoundary);
  BigInt b(-kNearBoundary + 10);
  for (auto _ : state) {
    BigInt accumulator(0);
    for (int i = 0; i < 128; ++i) {
      BigInt product = a * b;        // heap
      accumulator += product / a;    // back to inline
      benchmark::DoNotOptimize(product);
    }
    benchmark::DoNotOptimize(accumulator);
  }
}
BENCHMARK(BM_Numeric_BoundaryStraddle);

void BM_Numeric_BigMulDiv(benchmark::State& state) {
  // range(0) = decimal digits per operand: 40 stays schoolbook, 600
  // crosses the Karatsuba threshold.
  std::string digits_a, digits_b;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    digits_a.push_back('1' + static_cast<char>(i % 9));
    digits_b.push_back('9' - static_cast<char>(i % 7));
  }
  BigInt a = BigInt::FromString(digits_a);
  BigInt b = BigInt::FromString(digits_b);
  for (auto _ : state) {
    BigInt product = a * b;
    benchmark::DoNotOptimize(product / b);
    benchmark::DoNotOptimize(product);
  }
}
BENCHMARK(BM_Numeric_BigMulDiv)->Arg(40)->Arg(600);

// The counter-shaped workload: alternating weight products and branch
// sums over fractions with overlapping factors — exactly the pattern
// DpllCounter's BranchOnComponent/CountComponents accumulate.
std::vector<BigRational> CounterTerms() {
  std::vector<BigRational> terms;
  for (std::int64_t k = 1; k <= 64; ++k) {
    terms.push_back(BigRational::Fraction(2 * k + 1, k + 1));
    terms.push_back(BigRational::Fraction(-k, 2 * k + 3));
  }
  return terms;
}

void BM_Numeric_RationalEager(benchmark::State& state) {
  std::vector<BigRational> terms = CounterTerms();
  for (auto _ : state) {
    BigRational total(0);
    BigRational product(1);
    for (std::size_t i = 0; i < terms.size(); ++i) {
      product *= terms[i];
      if (i % 4 == 3) {
        total += product;
        product = BigRational(1);
      }
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_Numeric_RationalEager);

void BM_Numeric_RationalDeferred(benchmark::State& state) {
  std::vector<BigRational> terms = CounterTerms();
  for (auto _ : state) {
    RationalAccumulator total;
    RationalAccumulator product;
    product.SetOne();
    for (std::size_t i = 0; i < terms.size(); ++i) {
      product.Multiply(terms[i]);
      if (i % 4 == 3) {
        total.Add(product);
        product.SetOne();
      }
    }
    benchmark::DoNotOptimize(total.Canonical());
  }
}
BENCHMARK(BM_Numeric_RationalDeferred);

}  // namespace

BENCHMARK_MAIN();
